// Sensitivity study (beyond the paper's two calibration points): how the
// virtualization speedup depends on a task's compute-to-I/O ratio and the
// process count. Synthetic tasks with controlled stage times sweep the
// ratio across three decades; Eq. 5 provides the surface and the DES spots
// the N = 8 column (staging modeled off, as in the equations).
//
//   --procs=N   extra DES column at N processes (default 8)
#include <iostream>

#include "common/flags.hpp"
#include "support.hpp"

using namespace vgpu;

namespace {

gpu::KernelLaunch kernel_for(SimDuration duration,
                             const gpu::DeviceSpec& spec) {
  gpu::KernelLaunch l;
  l.name = "synthetic";
  l.geometry = gpu::KernelGeometry{4, 128, 16, 0};
  l.cost.efficiency = 0.1;
  l.cost.flops_per_thread =
      to_seconds(duration) * spec.sm_flops() * l.cost.efficiency / 128.0;
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int des_procs = static_cast<int>(flags.get_long("procs", 8));

  const gpu::DeviceSpec spec = bench::paper_device();
  print_banner(std::cout,
               "Sensitivity: speedup vs compute/I-O ratio (Tio = 30 ms "
               "fixed, Tinit/Tctx from the C2070 calibration)");
  TablePrinter table({"Tcomp/Tio", "S model N=2", "S model N=4",
                      "S model N=8", "S model N=16",
                      "S DES N=" + std::to_string(des_procs), "S max (Eq.6)"});

  const SimDuration t_in = milliseconds(20.0);
  const SimDuration t_out = milliseconds(10.0);
  for (const double ratio :
       {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0}) {
    const auto t_comp = static_cast<SimDuration>(
        ratio * static_cast<double>(t_in + t_out));

    model::ExecutionProfile p;
    p.t_init = spec.device_init_time + 8 * spec.ctx_create_time;
    p.t_ctx_switch = spec.ctx_switch_time;
    p.t_data_in = t_in;
    p.t_comp = t_comp;
    p.t_data_out = t_out;

    gvm::TaskPlan plan;
    plan.bytes_in = static_cast<Bytes>(to_seconds(t_in) * 2.944e9);
    plan.bytes_out = static_cast<Bytes>(to_seconds(t_out) * 3.001e9);
    plan.kernels = {kernel_for(t_comp, spec)};
    gvm::GvmConfig config = bench::paper_gvm_config();
    config.model_staging_copies = false;
    const double des_speedup =
        static_cast<double>(
            gvm::run_baseline(spec, plan, 1, des_procs).turnaround) /
        static_cast<double>(
            gvm::run_virtualized(spec, config, plan, 1, des_procs)
                .turnaround);

    table.add_row({TablePrinter::num(ratio, 1),
                   TablePrinter::num(model::speedup(p, 2), 2),
                   TablePrinter::num(model::speedup(p, 4), 2),
                   TablePrinter::num(model::speedup(p, 8), 2),
                   TablePrinter::num(model::speedup(p, 16), 2),
                   TablePrinter::num(des_speedup, 2),
                   TablePrinter::num(model::max_speedup(p), 2)});
  }
  bench::emit(table, "sensitivity_sweep");
  std::cout << "(compute-heavy tasks approach S = N; I/O-heavy tasks pin "
               "near Eq. 6's MAX(Tin,Tout) bound)\n";
  return 0;
}
