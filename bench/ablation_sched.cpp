// Scheduling-policy ablation: sweeps the four src/sched policies across a
// heterogeneous workload mix (I/O-heavy vecadd + compute-heavy NPB EP +
// balanced matmul) with skewed client arrivals, at N = 1..8 clients.
//
// The paper's barrier co-flush is designed for SPMD waves that arrive
// together; with staggered arrivals early clients wait for the cohort to
// fill. The time-quantum and fair-share policies dispatch rounds as they
// arrive, which shows up as a lower p95 client wait. The final section
// oversubscribes device memory to exercise quota admission + eviction.
#include <iostream>
#include <vector>

#include "support.hpp"

using namespace vgpu;

namespace {

struct PolicyCase {
  const char* name;
  sched::Policy policy;
};

constexpr PolicyCase kPolicies[] = {
    {"barrier", sched::Policy::kBarrierCoFlush},
    {"tq", sched::Policy::kTimeQuantum},
    {"fair", sched::Policy::kFairShare},
    {"prio", sched::Policy::kPriorityAging},
};

/// The mixed client population: cycles vecadd / EP / matmul, arrivals
/// skewed so client i shows up 50ms after client i-1. Rounds are short
/// relative to the skew, so under the SPMD barrier the dominant cost is
/// cohort formation (early arrivals are held hostage until the last
/// client shows up); per-round policies dispatch on arrival instead.
std::vector<gvm::MixedClient> make_mix(int nprocs) {
  const workloads::Workload members[] = {
      workloads::vector_add(1'000'000),
      workloads::npb_ep(24),
      workloads::matmul(512),
  };
  std::vector<gvm::MixedClient> mix;
  for (int i = 0; i < nprocs; ++i) {
    const workloads::Workload& w = members[i % 3];
    gvm::MixedClient client;
    client.plan = w.plan;
    client.plan.priority = i % 3;  // exercised by the prio policy
    client.rounds = 2;
    client.arrival = i * milliseconds(50.0);
    mix.push_back(client);
  }
  return mix;
}

gvm::RunResult run_policy(sched::Policy policy, int nprocs) {
  gvm::GvmConfig config = bench::paper_gvm_config();
  config.sched.policy = policy;
  config.sched.quantum = milliseconds(30.0);
  config.sched.hysteresis = milliseconds(2.0);
  return gvm::run_mixed(bench::paper_device(), config, make_mix(nprocs));
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Ablation: scheduling policy x mixed workload (skewed arrivals)");
  TablePrinter table({"policy", "clients", "turnaround (s)", "wait p50 (ms)",
                      "wait p95 (ms)", "grants", "quanta", "rotations",
                      "fairness spread (s)"});

  double barrier_p95_at_8 = 0.0, tq_p95_at_8 = 0.0, fair_p95_at_8 = 0.0;
  for (const PolicyCase& pc : kPolicies) {
    for (int nprocs = 1; nprocs <= 8; ++nprocs) {
      const gvm::RunResult r = run_policy(pc.policy, nprocs);
      const double p50_ms = r.sched.wait_percentile(0.50) * 1e3;
      const double p95_ms = r.sched.wait_percentile(0.95) * 1e3;
      if (nprocs == 8) {
        if (pc.policy == sched::Policy::kBarrierCoFlush) {
          barrier_p95_at_8 = p95_ms;
        } else if (pc.policy == sched::Policy::kTimeQuantum) {
          tq_p95_at_8 = p95_ms;
        } else if (pc.policy == sched::Policy::kFairShare) {
          fair_p95_at_8 = p95_ms;
        }
      }
      table.add_row({pc.name, std::to_string(nprocs),
                     TablePrinter::num(to_seconds(r.turnaround)),
                     TablePrinter::num(p50_ms), TablePrinter::num(p95_ms),
                     std::to_string(r.sched.grants),
                     std::to_string(r.sched.quanta_granted),
                     std::to_string(r.sched.rotations),
                     TablePrinter::num(to_seconds(r.fairness_spread()))});
    }
  }
  bench::emit(table, "ablation_sched");

  std::cout << "\np95 client wait at N=8 (ms): barrier="
            << TablePrinter::num(barrier_p95_at_8)
            << "  tq=" << TablePrinter::num(tq_p95_at_8)
            << "  fair=" << TablePrinter::num(fair_p95_at_8) << "\n";
  bool ok = true;
  if (!(tq_p95_at_8 < barrier_p95_at_8 && fair_p95_at_8 < barrier_p95_at_8)) {
    std::cout << "VIOLATION: per-round policies should beat the barrier's "
                 "p95 wait under skewed arrivals\n";
    ok = false;
  }

  // Oversubscription: 8 clients whose aggregate footprint exceeds device
  // memory, served through quota admission + LRU eviction (SUS/RES swap
  // charged through the PCIe model).
  {
    print_banner(std::cout, "Oversubscribed device (8 clients, TQ policy)");
    gpu::DeviceSpec spec = bench::paper_device();
    spec.global_mem = 512 * kMiB;  // vecadd mix needs ~8 x 120MB
    gvm::GvmConfig config = bench::paper_gvm_config();
    config.sched.policy = sched::Policy::kTimeQuantum;
    config.auto_suspend_on_pressure = true;
    std::vector<gvm::MixedClient> mix;
    for (int i = 0; i < 8; ++i) {
      gvm::MixedClient client;
      client.plan = workloads::vector_add(10'000'000).plan;  // 120MB each
      client.rounds = 2;
      client.arrival = i * milliseconds(1.0);
      mix.push_back(client);
    }
    const gvm::RunResult r = gvm::run_mixed(spec, config, mix);
    TablePrinter over({"clients", "turnaround (s)", "evictions",
                       "pressure suspends", "pressure resumes",
                       "backpressured REQs"});
    over.add_row({"8", TablePrinter::num(to_seconds(r.turnaround)),
                  std::to_string(r.admission.evictions),
                  std::to_string(r.gvm.pressure_suspends),
                  std::to_string(r.gvm.pressure_resumes),
                  std::to_string(r.admission.backpressured)});
    bench::emit(over, "ablation_sched_oversub");
    if (r.turnaround <= 0) {
      std::cout << "VIOLATION: oversubscribed run did not complete\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
