// Open-loop load harness for the live serve path: N in-process clients
// (threads sharing one RtClientContext) drive task cycles against one
// RtServer on an arrival schedule that does NOT wait for the server —
// Poisson or synchronized-burst arrivals, grant latency measured from the
// *scheduled* arrival time so queueing delay is never hidden by a slow
// client (no coordinated omission).
//
//   load_gen --clients=1000 --requests=5 --rate=1000 --arrival=poisson
//
// Reports p50/p99/p999 grant latency (scheduled arrival -> STR ack),
// server CPU per request (CLOCK_THREAD_CPUTIME_ID over the serve loop),
// and the leak gates the CI job enforces: zero leaked session slots and
// zero leaked per-client shm segments after the population churns out.
// Results land in BENCH_load.json (--out) for the jq gates.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  int clients = 1000;
  int requests = 5;        // task cycles per client
  double rate = 0.0;       // aggregate arrivals/sec; 0 = clients per second
  std::string arrival = "poisson";  // poisson | burst
  std::string transport = "shm";    // shm | mq
  bool arena = true;
  std::string out = "BENCH_load.json";
  std::uint64_t seed = 42;
};

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--clients=")) {
      o->clients = std::atoi(v);
    } else if (const char* v = val("--requests=")) {
      o->requests = std::atoi(v);
    } else if (const char* v = val("--rate=")) {
      o->rate = std::atof(v);
    } else if (const char* v = val("--arrival=")) {
      o->arrival = v;
    } else if (const char* v = val("--transport=")) {
      o->transport = v;
    } else if (const char* v = val("--arena=")) {
      o->arena = std::atoi(v) != 0;
    } else if (const char* v = val("--out=")) {
      o->out = v;
    } else if (const char* v = val("--seed=")) {
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--smoke") {
      // CI scale: small population, short run, same code paths.
      o->clients = 256;
      o->requests = 2;
    } else {
      std::fprintf(stderr,
                   "usage: load_gen [--clients=N] [--requests=R] [--rate=A]"
                   " [--arrival=poisson|burst] [--transport=shm|mq]"
                   " [--arena=0|1] [--out=FILE] [--seed=S] [--smoke]\n");
      return false;
    }
  }
  if (o->rate <= 0.0) o->rate = static_cast<double>(o->clients);
  return true;
}

/// Per-client absolute arrival schedule, fixed before the run starts (the
/// open-loop property: arrivals never depend on server progress).
std::vector<Clock::time_point> make_schedule(const Options& o, int id,
                                             Clock::time_point start) {
  std::vector<Clock::time_point> when;
  when.reserve(static_cast<std::size_t>(o.requests));
  const double per_client_interval =
      static_cast<double>(o.clients) / o.rate;  // seconds between my arrivals
  if (o.arrival == "burst") {
    // Synchronized waves: the whole population submits at the same
    // instants — the SPMD-barrier worst case for the ready set and the
    // grant batcher.
    for (int i = 0; i < o.requests; ++i) {
      when.push_back(start + std::chrono::microseconds(static_cast<long>(
                                 (i + 1) * per_client_interval * 1e6)));
    }
    return when;
  }
  std::mt19937_64 rng(o.seed * 1000003ull + static_cast<std::uint64_t>(id));
  std::exponential_distribution<double> exp(1.0 / per_client_interval);
  double t = 0.0;
  for (int i = 0; i < o.requests; ++i) {
    t += exp(rng);
    when.push_back(start +
                   std::chrono::microseconds(static_cast<long>(t * 1e6)));
  }
  return when;
}

struct ClientResult {
  std::vector<double> grant_ms;  // scheduled arrival -> STR ack
  long errors = 0;
};

/// Fraction-ranked percentile over a sorted sample set, via the repo's
/// canonical interpolation rule (common/stats.hpp).
double pct(const std::vector<double>& sorted, double p) {
  return vgpu::percentile(sorted, p);
}

/// Per-client shm segments left behind under `prefix` (the leak gate);
/// the server-owned _door/_arena names live until server destruction and
/// do not count.
long leaked_segments(const std::string& prefix) {
  namespace fs = std::filesystem;
  const std::string stem = prefix.substr(1);  // shm names drop the '/'
  long leaked = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator("/dev/shm", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem, 0) != 0) continue;
    if (name == stem + "_door" || name == stem + "_arena") continue;
    ++leaked;
  }
  return leaked;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;

  const std::string prefix =
      "/vgpu_load_" + std::to_string(::getpid());
  const bool ring = opt.transport != "mq";

  rt::RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = 1;  // grant each STR as it arrives
  config.workers = 2;
  config.transport =
      ring ? ipc::TransportKind::kShmRing : ipc::TransportKind::kMessageQueue;
  config.data_plane = rt::DataPlane::kZeroCopy;
  config.max_sessions = opt.clients + 64;
  // Arena sizing: every client's region is the same small channel+data
  // slice; double it for re-attach churn headroom.
  const Bytes slice = rt::vsm_region_size(
      ipc::kTransportCapMqueue | ipc::kTransportCapShmRing, 64, 64);
  if (opt.arena && ring) {
    config.arena_size = static_cast<Bytes>(opt.clients + 64) * (slice + 128) * 2;
  }
  // Slow generator threads on an oversubscribed box must not be declared
  // dead mid-run; lingering released sessions should GC quickly so the
  // leak gate can sample a quiesced server.
  config.lease_timeout = std::chrono::milliseconds(30000);
  config.lease_check_interval = std::chrono::milliseconds(20);
  config.release_linger = std::chrono::milliseconds(20);

  rt::RtServer server(config, rt::builtin_registry());
  if (const Status st = server.start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.to_string().c_str());
    return 1;
  }
  auto ctx = rt::RtClientContext::open(prefix);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context open failed: %s\n",
                 ctx.status().to_string().c_str());
    return 1;
  }
  const auto kid = rt::builtin_registry().id_of("vecadd");
  if (!kid.ok()) {
    std::fprintf(stderr, "vecadd kernel missing from registry\n");
    return 1;
  }

  const auto start = Clock::now() + std::chrono::milliseconds(300);
  std::vector<ClientResult> results(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.clients));
  std::atomic<long> attach_failures{0};
  for (int id = 0; id < opt.clients; ++id) {
    threads.emplace_back([&, id] {
      ClientResult& r = results[static_cast<std::size_t>(id)];
      rt::RtClientOptions copts;
      copts.transport = ring ? ipc::TransportKind::kShmRing
                             : ipc::TransportKind::kMessageQueue;
      copts.arena = opt.arena && ring;
      auto client = rt::RtClient::connect(ctx.value(), id, 64, 64, copts);
      if (!client.ok()) {
        attach_failures.fetch_add(1);
        return;
      }
      const std::int64_t params[4] = {8, 0, 0, 0};
      if (!client->req(*kid, params).ok()) {
        attach_failures.fetch_add(1);
        return;
      }
      std::fill(client->input().begin(), client->input().end(),
                std::byte{1});
      const auto schedule = make_schedule(opt, id, start);
      for (const auto& due : schedule) {
        std::this_thread::sleep_until(due);
        bool ok = client->snd().ok() && client->str().ok();
        const auto acked = Clock::now();
        if (ok) {
          r.grant_ms.push_back(
              std::chrono::duration<double, std::milli>(acked - due).count());
          ok = client->wait_done().ok() && client->rcv().ok();
        }
        if (!ok) ++r.errors;
      }
      if (!client->rls().ok()) ++r.errors;
    });
  }
  for (auto& t : threads) t.join();

  // Let the serve loop GC the lingering released sessions, then sample
  // the slot ledger while the server is still the slots' owner.
  std::this_thread::sleep_for(config.release_linger +
                              4 * config.lease_check_interval +
                              std::chrono::milliseconds(100));
  const rt::RtServerStats& stats = server.stats();
  const long attached = stats.sessions_attached.load();
  const long recycled = stats.slots_recycled.load();
  const long leaked_slots = attached - recycled;
  const long leaked = leaked_segments(prefix);
  server.stop();

  std::vector<double> grant;
  long errors = 0;
  for (const auto& r : results) {
    grant.insert(grant.end(), r.grant_ms.begin(), r.grant_ms.end());
    errors += r.errors;
  }
  std::sort(grant.begin(), grant.end());
  const long requests = stats.requests.load();
  const double cpu_us_per_req =
      requests > 0 ? static_cast<double>(stats.serve_cpu_ns.load()) / 1e3 /
                         static_cast<double>(requests)
                   : 0.0;
  const obs::Gauge* in_use =
      server.obs().metrics().find_gauge("arena.in_use_bytes");

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"clients\": %d,\n", opt.clients);
  std::fprintf(f, "  \"requests_per_client\": %d,\n", opt.requests);
  std::fprintf(f, "  \"arrival\": \"%s\",\n", opt.arrival.c_str());
  std::fprintf(f, "  \"rate_per_sec\": %.1f,\n", opt.rate);
  std::fprintf(f, "  \"transport\": \"%s\",\n", ring ? "shm_ring" : "mqueue");
  std::fprintf(f, "  \"arena\": %s,\n", opt.arena && ring ? "true" : "false");
  std::fprintf(f, "  \"grants\": %zu,\n", grant.size());
  std::fprintf(f, "  \"errors\": %ld,\n", errors);
  std::fprintf(f, "  \"attach_failures\": %ld,\n", attach_failures.load());
  std::fprintf(f, "  \"grant_latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, "
                  "\"p999\": %.3f, \"max\": %.3f},\n",
               pct(grant, 0.50), pct(grant, 0.99), pct(grant, 0.999),
               grant.empty() ? 0.0 : grant.back());
  std::fprintf(f, "  \"server_requests\": %ld,\n", requests);
  std::fprintf(f, "  \"server_cpu_us_per_request\": %.3f,\n", cpu_us_per_req);
  std::fprintf(f, "  \"ring_requests\": %ld,\n", stats.ring_requests.load());
  std::fprintf(f, "  \"mailbox_acks\": %ld,\n", stats.mailbox_acks.load());
  std::fprintf(f, "  \"arena_grants\": %ld,\n", stats.arena_grants.load());
  std::fprintf(f, "  \"sessions_attached\": %ld,\n", attached);
  std::fprintf(f, "  \"slots_recycled\": %ld,\n", recycled);
  std::fprintf(f, "  \"stale_sessions\": %ld,\n", stats.stale_sessions.load());
  std::fprintf(f, "  \"leaked_slots\": %ld,\n", leaked_slots);
  std::fprintf(f, "  \"leaked_segments\": %ld,\n", leaked);
  std::fprintf(f, "  \"arena_in_use_bytes_after\": %.0f\n",
               in_use != nullptr ? in_use->value() : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "load_gen: %d clients, %zu grants, %ld errors | grant p50 %.3fms "
      "p99 %.3fms p999 %.3fms | %.2fus server CPU/req | leaked slots %ld "
      "segments %ld -> %s\n",
      opt.clients, grant.size(), errors, pct(grant, 0.50), pct(grant, 0.99),
      pct(grant, 0.999), cpu_us_per_req, leaked_slots, leaked,
      opt.out.c_str());
  const bool failed = errors > 0 || attach_failures.load() > 0 ||
                      leaked_slots != 0 || leaked != 0;
  return failed ? 1 : 0;
}
