// Microbenchmarks of the live IPC substrate: message-queue round trips,
// shared-memory bandwidth and ring-buffer throughput — the real-machine
// costs behind the GVM's msg_latency / host_memcpy_bw model parameters.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstring>
#include <thread>

#include "ipc/mqueue.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"

using namespace vgpu;

namespace {

std::string unique_name(const char* tag) {
  return std::string("/vgpu_bench_") + tag + "_" +
         std::to_string(::getpid());
}

struct Msg {
  int type;
  int client;
};

void BM_MqueueRoundTrip(benchmark::State& state) {
  auto req = ipc::MessageQueue<Msg>::create(unique_name("req"));
  auto resp = ipc::MessageQueue<Msg>::create(unique_name("resp"));
  if (!req.ok() || !resp.ok()) {
    state.SkipWithError("mq creation failed");
    return;
  }
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    for (;;) {
      auto m = req->receive(std::chrono::milliseconds(200));
      if (!m.ok()) {
        if (stop.load()) return;
        continue;
      }
      (void)resp->send(*m);
    }
  });
  for (auto _ : state) {
    (void)req->send({1, 2});
    auto m = resp->receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(m.ok());
  }
  stop.store(true);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MqueueRoundTrip);

void BM_ShmMemcpy(benchmark::State& state) {
  const Bytes size = state.range(0);
  auto shm = ipc::SharedMemory::create(unique_name("bw"), size);
  if (!shm.ok()) {
    state.SkipWithError("shm creation failed");
    return;
  }
  std::vector<std::byte> src(static_cast<std::size_t>(size), std::byte{7});
  for (auto _ : state) {
    std::memcpy(shm->data(), src.data(), src.size());
    benchmark::DoNotOptimize(shm->data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ShmMemcpy)->Arg(64 * kKiB)->Arg(4 * kMiB)->Arg(64 * kMiB);

void BM_RingThroughput(benchmark::State& state) {
  // One long-lived producer feeding every iteration: spawning a thread per
  // iteration would bill ~10us of clone/join against a ~10ns/item ring.
  static ipc::SpscRing<long, 4096> ring;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    long i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (ring.push(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  constexpr long kBatch = 100000;
  for (auto _ : state) {
    long count = 0;
    while (count < kBatch) {
      if (ring.pop().has_value()) ++count;
    }
  }
  stop.store(true);
  producer.join();
  while (ring.pop().has_value()) {
  }  // leave the static ring empty for the next repetition
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_RingThroughput);

}  // namespace

BENCHMARK_MAIN();
