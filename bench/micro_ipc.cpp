// Microbenchmarks of the live IPC substrate: message-queue round trips,
// shared-memory bandwidth and ring-buffer throughput — the real-machine
// costs behind the GVM's msg_latency / host_memcpy_bw model parameters.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstring>
#include <thread>

#include "ipc/mqueue.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"

using namespace vgpu;

namespace {

std::string unique_name(const char* tag) {
  return std::string("/vgpu_bench_") + tag + "_" +
         std::to_string(::getpid());
}

struct Msg {
  int type;
  int client;
};

void BM_MqueueRoundTrip(benchmark::State& state) {
  auto req = ipc::MessageQueue<Msg>::create(unique_name("req"));
  auto resp = ipc::MessageQueue<Msg>::create(unique_name("resp"));
  if (!req.ok() || !resp.ok()) {
    state.SkipWithError("mq creation failed");
    return;
  }
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    for (;;) {
      auto m = req->receive(std::chrono::milliseconds(200));
      if (!m.ok()) {
        if (stop.load()) return;
        continue;
      }
      (void)resp->send(*m);
    }
  });
  for (auto _ : state) {
    (void)req->send({1, 2});
    auto m = resp->receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(m.ok());
  }
  stop.store(true);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MqueueRoundTrip);

void BM_ShmMemcpy(benchmark::State& state) {
  const Bytes size = state.range(0);
  auto shm = ipc::SharedMemory::create(unique_name("bw"), size);
  if (!shm.ok()) {
    state.SkipWithError("shm creation failed");
    return;
  }
  std::vector<std::byte> src(static_cast<std::size_t>(size), std::byte{7});
  for (auto _ : state) {
    std::memcpy(shm->data(), src.data(), src.size());
    benchmark::DoNotOptimize(shm->data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ShmMemcpy)->Arg(64 * kKiB)->Arg(4 * kMiB)->Arg(64 * kMiB);

void BM_RingThroughput(benchmark::State& state) {
  static ipc::SpscRing<long, 4096> ring;
  for (auto _ : state) {
    std::thread producer([&] {
      for (long i = 0; i < 100000; ++i) {
        while (!ring.push(i)) std::this_thread::yield();
      }
    });
    long count = 0;
    while (count < 100000) {
      if (ring.pop().has_value()) ++count;
    }
    producer.join();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_RingThroughput);

}  // namespace

BENCHMARK_MAIN();
