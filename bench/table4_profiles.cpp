// Reproduces paper Table IV: details of the five application benchmarks —
// problem size, grid size and I/O-vs-compute classification — as measured
// on the simulated device, next to the paper's labels.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

int main() {
  const gpu::DeviceSpec spec = bench::paper_device();

  struct Row {
    workloads::Workload workload;
    const char* problem;
    long paper_grid;
    const char* paper_class;
  };
  const Row rows[] = {
      {workloads::matmul(), "2Kx2K Matrix", 4096, "Intermediate"},
      {workloads::npb_mg(), "S(32x32x32 Nit=4)", 64, "Comp-intensive"},
      {workloads::black_scholes(), "1M call, Nit=512", 480, "I/O-intensive"},
      {workloads::npb_cg(), "S(NA=1400, Nit=15)", 8, "Comp-intensive"},
      {workloads::electrostatics(), "100K atoms, Nit=25", 288,
       "Comp-intensive"},
  };

  print_banner(std::cout, "Table IV: details of application benchmarks");
  TablePrinter table({"benchmark", "problem size", "grid size (ours)",
                      "grid size (paper)", "class (ours)", "class (paper)"});
  for (const Row& row : rows) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, row.workload.plan, 8, row.workload.name);
    table.add_row(
        {row.workload.name, row.problem,
         std::to_string(row.workload.plan.kernels[0].geometry.grid_blocks),
         std::to_string(row.paper_grid),
         model::workload_class_name(model::classify(p)), row.paper_class});
  }
  bench::emit(table, "table4_profiles");
  return 0;
}
