// Microbenchmarks of the discrete-event engine (google-benchmark): raw
// event dispatch, coroutine context switches, channel messaging, barriers.
#include <benchmark/benchmark.h>

#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"

using namespace vgpu;

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    const long events = state.range(0);
    for (long i = 0; i < events; ++i) {
      sim.call_at(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    sim.spawn([](des::Simulator& s, long hops) -> des::Task<> {
      for (long i = 0; i < hops; ++i) co_await s.delay(1);
    }(sim, state.range(0)));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(100000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    des::Channel<int> ping(sim), pong(sim);
    const long rounds = state.range(0);
    sim.spawn([](des::Channel<int>& ping, des::Channel<int>& pong,
                 long rounds) -> des::Task<> {
      for (long i = 0; i < rounds; ++i) {
        ping.send(static_cast<int>(i));
        (void)co_await pong.receive();
      }
    }(ping, pong, rounds));
    sim.spawn([](des::Channel<int>& ping, des::Channel<int>& pong,
                 long rounds) -> des::Task<> {
      for (long i = 0; i < rounds; ++i) {
        (void)co_await ping.receive();
        pong.send(static_cast<int>(i));
      }
    }(ping, pong, rounds));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(10000);

void BM_BarrierRounds(benchmark::State& state) {
  const int parties = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    des::Barrier barrier(sim, static_cast<std::size_t>(parties));
    for (int p = 0; p < parties; ++p) {
      sim.spawn([](des::Simulator& s, des::Barrier& b) -> des::Task<> {
        for (int round = 0; round < 100; ++round) {
          co_await s.delay(1);
          co_await b.arrive_and_wait();
        }
      }(sim, barrier));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * parties * 100);
}
BENCHMARK(BM_BarrierRounds)->Arg(2)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
