// vmem ablation: transparent memory oversubscription on the live path.
//
// Section 1 replays PR 1's 8:1 sharing scenario (8 clients on one device
// whose aggregate footprint is ~2x device memory) through the pager
// instead of whole-client admission evictions: every client must finish
// and `vmem.evictions_whole_client` must stay 0 while the pager spills
// cold pages to the host ledger.
//
// Section 2 is the thrash-vs-TQ sweep over the TimeQuantum window: a
// quantum shorter than a job forces a rotation every round, so working
// sets ping-pong through the ledger on each handoff; a quantum wide
// enough for a client's burst gives it an exclusive window (nvshare's
// anti-thrash design) and the residency hold keeps the window from being
// released between rounds. Fair-share rides along as the interleaving
// baseline.
//
// The default geometry is smoke-test sized; `--full` runs the CI shape
// (512 MiB device, ~120 MB per client). `--metrics-json=<f>` dumps the
// 8:1 run's registry and `--thrash-metrics-json=<f>` the fair-policy
// thrash run's, for the bench-vmem CI job's jq gates.
#include <unistd.h>

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "support.hpp"

#include "common/flags.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

struct Geometry {
  long n = 0;           // vecadd element count per client
  Bytes device = 0;     // modeled device memory
  Bytes ledger = 0;     // host ledger bound
  Bytes page = 0;       // page size
  int clients = 8;
  int rounds = 2;
};

Geometry smoke_geometry() {
  Geometry g;
  g.n = 262'144;  // 2 MiB in + 1 MiB out per client, 24 MiB aggregate
  g.device = 8 * kMiB;
  g.ledger = 64 * kMiB;
  g.page = 64 * 1024;
  return g;
}

Geometry full_geometry() {
  Geometry g;
  g.n = 10'000'000;  // ~80 MB in + ~40 MB out per client (PR 1's footprint)
  g.device = 512 * kMiB;
  g.ledger = 1024 * kMiB;
  g.page = 2 * kMiB;
  return g;
}

struct RunOutcome {
  bool all_clients_ok = false;
  double wall_ms = 0.0;
  long faults = 0;
  long page_ins = 0;
  long page_outs = 0;
  long clean_drops = 0;
  long prefetch_issued = 0;
  long prefetch_hits = 0;
  long pin_shortfalls = 0;
  long resident_holds = 0;
  long whole_client_evictions = 0;
};

/// One client thread: connect, REQ, `rounds` full SND/STR/STP/RCV cycles,
/// RLS. The zero-copy plane keeps RSS to one mapping per client.
bool run_client(const std::string& prefix, int id, const Geometry& g) {
  rt::RtClientOptions options;
  auto client = rt::RtClient::connect(prefix, id, 2 * g.n * 4, g.n * 4,
                                      options);
  if (!client.ok()) return false;
  auto kid = rt::builtin_registry().id_of("vecadd");
  if (!kid.ok()) return false;
  auto* in = reinterpret_cast<float*>(client->input().data());
  for (long i = 0; i < 2 * g.n; ++i) in[i] = 0.5f * static_cast<float>(i % 16);
  const std::int64_t params[4] = {g.n, 0, 0, 0};
  if (!client->req(*kid, params).ok()) return false;
  for (int round = 0; round < g.rounds; ++round) {
    if (!client->snd().ok()) return false;
    if (!client->str().ok()) return false;
    if (!client->wait_done().ok()) return false;
    if (!client->rcv().ok()) return false;
  }
  return client->rls().ok();
}

RunOutcome run_oversub(const Geometry& g, sched::Policy policy,
                       SimDuration quantum, const char* tag,
                       const std::string& metrics_json) {
  rt::RtServerConfig config;
  config.prefix = "/vgpu_avm_" + std::string(tag) + "_" +
                  std::to_string(::getpid());
  config.expected_clients = g.clients;
  config.workers = 4;
  config.sched.policy = policy;
  config.sched.quantum = quantum;
  config.sched.hysteresis = milliseconds(2.0);
  config.data_plane = rt::DataPlane::kZeroCopy;
  config.vmem.enabled = true;
  config.vmem.page_size = g.page;
  config.vmem.device_capacity = g.device;
  config.vmem.host_ledger = g.ledger;
  rt::RtServer server(config, rt::builtin_registry());
  RunOutcome out;
  if (!server.start().ok()) {
    std::cout << "VIOLATION: live server failed to start\n";
    return out;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<char> ok(static_cast<std::size_t>(g.clients), 0);
  for (int c = 0; c < g.clients; ++c) {
    threads.emplace_back([&, c] {
      ok[static_cast<std::size_t>(c)] =
          run_client(config.prefix, c, g) ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  server.stop();
  out.all_clients_ok = true;
  for (const char c : ok) out.all_clients_ok = out.all_clients_ok && c != 0;
  const obs::Registry& reg = server.obs().metrics();
  const auto cnt = [&reg](const char* name) {
    const obs::Counter* c = reg.find_counter(name);
    return c != nullptr ? c->value() : 0L;
  };
  out.faults = cnt("vmem.faults");
  out.page_ins = cnt("vmem.page_ins");
  out.page_outs = cnt("vmem.page_outs");
  out.clean_drops = cnt("vmem.clean_drops");
  out.prefetch_issued = cnt("vmem.prefetch_issued");
  out.prefetch_hits = cnt("vmem.prefetch_hits");
  out.pin_shortfalls = cnt("vmem.pin_shortfalls");
  out.resident_holds = cnt("sched.resident_holds");
  out.whole_client_evictions = cnt("vmem.evictions_whole_client");
  if (!metrics_json.empty()) {
    const Status st = reg.write_json(metrics_json);
    if (!st.ok()) {
      std::cout << "VIOLATION: metrics write failed: " << st.to_string()
                << "\n";
      out.all_clients_ok = false;
    }
  }
  return out;
}

std::string hit_rate(const RunOutcome& r) {
  if (r.prefetch_issued == 0) return "-";
  return TablePrinter::num(100.0 * static_cast<double>(r.prefetch_hits) /
                           static_cast<double>(r.prefetch_issued)) +
         "%";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = flags.get_bool("full");
  Geometry g = full ? full_geometry() : smoke_geometry();
  bool ok = true;

  // ------------------------------------------------------------------
  // Section 1: the 8:1 sharing scenario through the pager.
  // ------------------------------------------------------------------
  print_banner(std::cout, full ? "8:1 oversubscription, live pager "
                                 "(512 MiB device, TQ policy)"
                               : "8:1 oversubscription, live pager "
                                 "(smoke geometry, TQ policy)");
  const RunOutcome oversub =
      run_oversub(g, sched::Policy::kTimeQuantum, milliseconds(20.0),
                  "oversub", flags.get_string("metrics-json", ""));
  TablePrinter table({"clients", "wall (ms)", "faults", "page-ins",
                      "page-outs", "prefetch hit", "shortfalls",
                      "whole-client evictions"});
  table.add_row({std::to_string(g.clients), TablePrinter::num(oversub.wall_ms),
                 std::to_string(oversub.faults),
                 std::to_string(oversub.page_ins),
                 std::to_string(oversub.page_outs), hit_rate(oversub),
                 std::to_string(oversub.pin_shortfalls),
                 std::to_string(oversub.whole_client_evictions)});
  bench::emit(table, "ablation_vmem");
  if (!oversub.all_clients_ok) {
    std::cout << "VIOLATION: a client failed in the oversubscribed run\n";
    ok = false;
  }
  if (oversub.whole_client_evictions != 0) {
    std::cout << "VIOLATION: the pager must complete the 8:1 scenario with "
                 "zero whole-client evictions\n";
    ok = false;
  }
  if (oversub.faults == 0) {
    std::cout << "VIOLATION: the pager never faulted — vmem was not on the "
                 "grant path\n";
    ok = false;
  }

  // ------------------------------------------------------------------
  // Section 2: thrash (fair round-robin) vs TimeQuantum anti-thrash.
  // Interleaved grants ping-pong working sets through the ledger; TQ's
  // residency hold keeps a resident client on the device for its window,
  // so it pages out strictly less.
  // ------------------------------------------------------------------
  print_banner(std::cout, "Thrash sweep: TQ quantum (rotation-per-round vs "
                          "exclusive window) + fair baseline");
  g.rounds = 3;
  // Shorter than one job: every round pays a working-set migration.
  const SimDuration thrash_q = milliseconds(full ? 10.0 : 0.5);
  // Wider than a client's whole burst: one migration per client, and the
  // residency hold bridges the idle gaps between its rounds.
  const SimDuration wide_q = milliseconds(full ? 5000.0 : 200.0);
  const RunOutcome tq_short =
      run_oversub(g, sched::Policy::kTimeQuantum, thrash_q, "tqs",
                  flags.get_string("thrash-metrics-json", ""));
  const RunOutcome tq_wide =
      run_oversub(g, sched::Policy::kTimeQuantum, wide_q, "tqw", "");
  const RunOutcome fair = run_oversub(g, sched::Policy::kFairShare,
                                      milliseconds(20.0), "fair", "");
  TablePrinter thrash({"policy", "wall (ms)", "page-outs", "page-ins",
                       "clean drops", "prefetch hit", "resident holds",
                       "whole-client evictions"});
  for (const auto& [name, r] :
       {std::pair<const char*, const RunOutcome&>{"tq-short (thrash)",
                                                  tq_short},
        std::pair<const char*, const RunOutcome&>{"tq-wide (exclusive)",
                                                  tq_wide},
        std::pair<const char*, const RunOutcome&>{"fair", fair}}) {
    thrash.add_row({name, TablePrinter::num(r.wall_ms),
                    std::to_string(r.page_outs), std::to_string(r.page_ins),
                    std::to_string(r.clean_drops), hit_rate(r),
                    std::to_string(r.resident_holds),
                    std::to_string(r.whole_client_evictions)});
  }
  bench::emit(thrash, "ablation_vmem_thrash");
  if (!tq_short.all_clients_ok || !tq_wide.all_clients_ok ||
      !fair.all_clients_ok) {
    std::cout << "VIOLATION: a client failed in the thrash sweep\n";
    ok = false;
  }
  if (tq_short.whole_client_evictions != 0 ||
      tq_wide.whole_client_evictions != 0 ||
      fair.whole_client_evictions != 0) {
    std::cout << "VIOLATION: whole-client evictions in the thrash sweep\n";
    ok = false;
  }
  if (tq_wide.page_outs > tq_short.page_outs) {
    std::cout << "VIOLATION: an exclusive TQ window should page out no "
                 "more than rotation-per-round\n";
    ok = false;
  }
  std::cout << "\npage-outs: tq-short=" << tq_short.page_outs
            << "  tq-wide=" << tq_wide.page_outs << "  fair="
            << fair.page_outs << "  (the exclusive window keeps the "
            << "resident working set on-device)\n";
  return ok ? 0 : 1;
}
