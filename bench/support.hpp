// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports
// and mirrors them to CSV next to the binary (<name>.csv) for re-plotting.
#pragma once

#include <string>

#include "common/table.hpp"
#include "gpu/spec.hpp"
#include "gvm/experiment.hpp"
#include "model/model.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::bench {

/// The paper's testbed device (calibrated Tesla C2070) and GVM settings.
gpu::DeviceSpec paper_device();
gvm::GvmConfig paper_gvm_config();

/// Runs one workload at `nprocs` both ways; returns {baseline, virtualized}.
struct Comparison {
  gvm::RunResult baseline;
  gvm::RunResult virtualized;
  double speedup() const {
    return static_cast<double>(baseline.turnaround) /
           static_cast<double>(virtualized.turnaround);
  }
};
Comparison compare(const workloads::Workload& w, int nprocs);

/// Turnaround sweep over process counts (the Figure 9 / 11-15 shape):
/// prints one row per N with baseline and virtualized turnaround.
void turnaround_sweep(const workloads::Workload& w, int max_procs,
                      const std::string& figure_title,
                      const std::string& csv_name);

/// Writes `table` to stdout and to `<csv_name>.csv`; reports the path.
void emit(TablePrinter& table, const std::string& csv_name);

}  // namespace vgpu::bench
