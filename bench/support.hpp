// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports
// and mirrors them to CSV next to the binary (<name>.csv) for re-plotting.
#pragma once

#include <string>

#include "common/table.hpp"
#include "gpu/spec.hpp"
#include "gvm/experiment.hpp"
#include "model/model.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::bench {

/// The paper's testbed device (calibrated Tesla C2070) and GVM settings.
gpu::DeviceSpec paper_device();
gvm::GvmConfig paper_gvm_config();

/// Runs one workload at `nprocs` both ways; returns {baseline, virtualized}.
struct Comparison {
  gvm::RunResult baseline;
  gvm::RunResult virtualized;
  double speedup() const {
    return static_cast<double>(baseline.turnaround) /
           static_cast<double>(virtualized.turnaround);
  }
};
Comparison compare(const workloads::Workload& w, int nprocs);

/// Turnaround sweep over process counts (the Figure 9 / 11-15 shape):
/// prints one row per N with baseline and virtualized turnaround.
void turnaround_sweep(const workloads::Workload& w, int max_procs,
                      const std::string& figure_title,
                      const std::string& csv_name);

/// Writes `table` to stdout and to `<csv_name>.csv`; reports the path.
void emit(TablePrinter& table, const std::string& csv_name);

}  // namespace vgpu::bench

// Micro-bench (google-benchmark) helpers. Header-only, and only compiled
// when the including binary already pulled in <benchmark/benchmark.h>, so
// the table/figure benches (which do not link google-benchmark) are
// unaffected. Micro benches include benchmark.h first, then this header.
#ifdef BENCHMARK_BENCHMARK_H_

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace vgpu::bench {

/// Order statistics over one sample set. The implementation lives in
/// common/stats.hpp so every consumer (sched stats, SLO reporter, micro
/// benches) shares one interpolation rule and one set of edge-case
/// semantics; this alias keeps the historical bench spelling working.
using SampleStats = ::vgpu::SampleStats;

/// One-shot convenience; for repeated queries over the same samples build
/// a SampleStats instead.
inline double percentile(std::vector<double> samples, double p) {
  return SampleStats(std::move(samples)).percentile(p);
}

inline double p95_statistic(const std::vector<double>& samples) {
  return percentile(samples, 0.95);
}

/// Mirrors an obs registry snapshot into the benchmark's user counters, so
/// the JSON the CI bench jobs upload carries the subsystem counters next
/// to the timing aggregates. Histograms report their total count under
/// "<name>.count".
inline void report_registry(::benchmark::State& state,
                            const obs::Registry& registry) {
  const obs::RegistrySnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    state.counters[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    state.counters[name] = value;
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    state.counters[h.name + ".count"] = static_cast<double>(h.count);
  }
}

/// Runs every registered micro benchmark with warmup + K repetitions,
/// reporting aggregates (median, p95 via VGPU_MICRO_BENCHMARK, ...) only.
/// `--reps=K` picks the repetition count (default `default_reps`); every
/// other flag passes through to google-benchmark untouched, and explicit
/// --benchmark_repetitions= / --benchmark_min_warmup_time= flags win over
/// the injected defaults.
inline int run_micro_benchmarks(int argc, char** argv,
                                int default_reps = 5) {
  int reps = default_reps;
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 3);
  bool explicit_reps = false;
  bool explicit_warmup = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::max(1, std::atoi(argv[i] + 7));
      continue;  // ours, not google-benchmark's
    }
    if (std::strncmp(argv[i], "--benchmark_repetitions=", 24) == 0) {
      explicit_reps = true;
    }
    if (std::strncmp(argv[i], "--benchmark_min_warmup_time=", 28) == 0) {
      explicit_warmup = true;
    }
    args.push_back(argv[i]);
  }
  if (!explicit_reps) {
    storage.push_back("--benchmark_repetitions=" + std::to_string(reps));
  }
  if (!explicit_warmup) {
    // One timed-but-discarded window before measurement: mqueue/shm paths
    // fault in pages and warm the doorbell futex word.
    storage.push_back("--benchmark_min_warmup_time=0.05");
  }
  if (reps > 1) {
    storage.push_back("--benchmark_report_aggregates_only=true");
  }
  for (std::string& s : storage) args.push_back(s.data());
  int effective_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&effective_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(effective_argc,
                                               args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace vgpu::bench

/// BENCHMARK() plus a p95 aggregate across repetitions (median/mean/stddev
/// come from google-benchmark itself once --reps > 1).
#define VGPU_MICRO_BENCHMARK(fn) \
  BENCHMARK(fn)->ComputeStatistics("p95", ::vgpu::bench::p95_statistic)

/// BENCHMARK_MAIN() replacement wiring in --reps= warmup/median/p95.
#define VGPU_MICRO_MAIN()                                   \
  int main(int argc, char** argv) {                         \
    return ::vgpu::bench::run_micro_benchmarks(argc, argv); \
  }

#endif  // BENCHMARK_BENCHMARK_H_
