// Extension study (beyond the paper): scaling the virtualized node from
// one to four GPUs for 8 SPMD processes. Device-filling workloads (MM,
// Electrostatics) scale with added devices; latency-bound ones (EP, CG)
// are already concurrent on one device and gain little.
#include <iostream>

#include "gvm/multi.hpp"
#include "support.hpp"

using namespace vgpu;

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout,
               "Extension: multi-GPU virtualized node (8 processes, "
               "turnaround in s)");
  TablePrinter table(
      {"workload", "native 1 GPU", "GVM 1 GPU", "GVM 2 GPUs", "GVM 4 GPUs"});

  const workloads::Workload cases[] = {
      workloads::matmul(), workloads::electrostatics(), workloads::npb_ep(30),
      workloads::npb_cg()};
  for (const workloads::Workload& w : cases) {
    const gpu::DeviceSpec spec = bench::paper_device();
    std::vector<std::string> row{w.name};
    row.push_back(TablePrinter::num(to_seconds(
        gvm::run_baseline(spec, w.plan, w.rounds, kProcs).turnaround)));
    for (int ngpus : {1, 2, 4}) {
      const std::vector<gpu::DeviceSpec> specs(
          static_cast<std::size_t>(ngpus), spec);
      row.push_back(TablePrinter::num(to_seconds(
          gvm::run_virtualized_multi(specs, gvm::GvmConfig{}, w.plan,
                                     w.rounds, kProcs)
              .turnaround)));
    }
    table.add_row(row);
  }
  bench::emit(table, "extension_multigpu");
  return 0;
}
