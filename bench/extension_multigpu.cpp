// Extension study (beyond the paper): the 4-device pool ablation.
//
// Placement policy (static / pack / spread / locality) x pool rebalancing
// (off / on) over a skewed client mix: client ids congruent to 0 mod
// `devices` carry the heavy plan, so the static modulo piles every heavy
// client onto device 0 — the hash-collision skew load-aware placement is
// supposed to fix. Reports p95/mean per-session turnaround, migration and
// replica-install counters, and the post-run drain oracle.
//
// A second table keeps the original MultiGvm SPMD turnaround scaling as
// the experimental control, and a migration oracle ping-pongs every
// functional workload between two devices at every round boundary,
// counting bitwise divergences against an unmigrated run (zero expected).
//
//   extension_multigpu [--devices=N] [--json=FILE]
//
// --json writes the jq-gated summary the CI bench-multi job enforces
// (spread beats pack, locality beats static, zero divergence, zero
// residual source state).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gvm/multi.hpp"
#include "gvm/pool.hpp"
#include "support.hpp"

using namespace vgpu;

namespace {

constexpr sched::PlacementPolicy kPolicies[] = {
    sched::PlacementPolicy::kStatic, sched::PlacementPolicy::kPack,
    sched::PlacementPolicy::kSpread, sched::PlacementPolicy::kLocality};

/// The skewed mix: 4 clients per device, heavy plans on ids that all
/// collide onto device 0 under the static modulo, staggered arrivals and
/// multi-session re-attach (the locality policy's residency signal).
std::vector<gvm::PoolClientSpec> skewed_mix(int devices,
                                            const workloads::Workload& heavy,
                                            const workloads::Workload& light) {
  std::vector<gvm::PoolClientSpec> mix;
  for (int i = 0; i < 4 * devices; ++i) {
    gvm::PoolClientSpec spec;
    const bool is_heavy = i % devices == 0;
    spec.plan = (is_heavy ? heavy : light).plan;
    spec.rounds = is_heavy ? 3 : 1;
    spec.sessions = 3;
    spec.arrival = microseconds(150.0 * i);
    spec.think = microseconds(300.0);
    mix.push_back(spec);
  }
  return mix;
}

gvm::PoolRunResult run_cell(int devices, sched::PlacementPolicy policy,
                            bool rebalance,
                            const std::vector<gvm::PoolClientSpec>& mix) {
  gvm::PoolConfig config;
  config.placement.policy = policy;
  config.rebalance = rebalance;
  config.rebalance_interval = microseconds(500.0);
  config.rebalance_min_gap = 2;
  const std::vector<gpu::DeviceSpec> specs(static_cast<std::size_t>(devices),
                                           bench::paper_device());
  return gvm::run_pool(specs, config, mix);
}

/// Migration-divergence oracle: every functional workload, one client on a
/// two-device pool, a forced move before every round; outputs must match
/// the unmigrated reference bitwise and both devices must drain to zero.
struct OracleResult {
  int workloads = 0;
  long migrations = 0;
  Bytes migrated_bytes = 0;
  int divergence = 0;
  Bytes residual_source_bytes = 0;
  std::size_t residual_sched_clients = 0;
};

OracleResult run_oracle() {
  OracleResult oracle;
  for (const std::string& name : workloads::functional_workload_names()) {
    auto w = workloads::make_functional(name);
    auto reference = workloads::make_functional(name);
    const int rounds = std::max(w.rounds, 3);

    des::Simulator sim;
    std::vector<std::unique_ptr<gpu::Device>> devices;
    std::vector<std::unique_ptr<vcuda::Runtime>> runtimes;
    std::vector<vcuda::Runtime*> ptrs;
    for (int d = 0; d < 2; ++d) {
      devices.push_back(
          std::make_unique<gpu::Device>(sim, bench::paper_device()));
      runtimes.push_back(
          std::make_unique<vcuda::Runtime>(sim, *devices.back()));
      ptrs.push_back(runtimes.back().get());
    }
    gvm::DevicePoolGvm pool(sim, ptrs, gvm::PoolConfig{});
    pool.start();
    sim.spawn([](des::Simulator& sim, gvm::DevicePoolGvm& pool,
                 workloads::FunctionalWorkload& w, int rounds) -> des::Task<> {
      co_await pool.wait_ready();
      gvm::PoolClient client(sim, pool, /*id=*/0);
      co_await client.req(w.plan);
      for (int round = 0; round < rounds; ++round) {
        pool.direct(0, pool.device_of(0) == 0 ? 1 : 0);
        co_await client.round();
      }
      co_await client.rls();
    }(sim, pool, w, rounds));
    sim.run();

    gvm::run_virtualized(bench::paper_device(), gvm::GvmConfig{},
                         reference.plan, rounds, 1);
    const bool identical =
        w.verify() && reference.verify() &&
        w.plan.bytes_out == reference.plan.bytes_out &&
        std::memcmp(w.plan.output, reference.plan.output,
                    static_cast<std::size_t>(w.plan.bytes_out)) == 0;
    ++oracle.workloads;
    oracle.migrations += pool.stats().migrations;
    oracle.migrated_bytes += pool.stats().migrated_bytes;
    if (!identical) ++oracle.divergence;
    for (auto& dev : devices) {
      oracle.residual_source_bytes += dev->memory_used();
    }
    for (std::size_t g = 0; g < pool.device_count(); ++g) {
      oracle.residual_sched_clients += pool.gvm(g).scheduler().clients();
    }
  }
  return oracle;
}

}  // namespace

int main(int argc, char** argv) {
  int devices = 4;
  std::string json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--devices=", 0) == 0) {
      devices = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: extension_multigpu [--devices=N] [--json=FILE]\n");
      return 2;
    }
  }
  if (devices < 2) devices = 2;

  const workloads::Workload heavy = workloads::matmul(256);
  const workloads::Workload light = workloads::matmul(128);
  const auto mix = skewed_mix(devices, heavy, light);

  print_banner(std::cout, "Extension: placement x rebalancing ablation (" +
                              std::to_string(devices) + " devices, " +
                              std::to_string(mix.size()) +
                              " clients, skewed mix)");
  TablePrinter table({"placement", "rebalance", "p95 ms", "mean ms",
                      "migrations", "installs", "warm hits"});
  // rebalance-off p95 per policy, for the jq gates.
  double p95_ms[4] = {0, 0, 0, 0};
  struct CellRow {
    const char* policy;
    bool rebalance;
    gvm::PoolRunResult r;
  };
  std::vector<CellRow> cells;
  int policy_index = 0;
  for (sched::PlacementPolicy policy : kPolicies) {
    for (bool rebalance : {false, true}) {
      gvm::PoolRunResult r = run_cell(devices, policy, rebalance, mix);
      if (!rebalance) p95_ms[policy_index] = r.p95_seconds() * 1e3;
      table.add_row({sched::placement_name(policy), rebalance ? "on" : "off",
                     TablePrinter::num(r.p95_seconds() * 1e3),
                     TablePrinter::num(r.mean_seconds() * 1e3),
                     std::to_string(r.pool.migrations),
                     std::to_string(r.pool.installs),
                     std::to_string(r.pool.warm_hits)});
      cells.push_back({sched::placement_name(policy), rebalance,
                       std::move(r)});
    }
    ++policy_index;
  }
  bench::emit(table, "extension_multigpu");

  // The original MultiGvm scaling rows, kept as the experimental control.
  print_banner(std::cout,
               "Control: MultiGvm SPMD turnaround (8 processes, seconds)");
  TablePrinter control(
      {"workload", "native 1 GPU", "GVM 1 GPU", "GVM 2 GPUs", "GVM 4 GPUs"});
  constexpr int kProcs = 8;
  for (const workloads::Workload& w :
       {workloads::matmul(), workloads::npb_ep(30)}) {
    const gpu::DeviceSpec spec = bench::paper_device();
    std::vector<std::string> row{w.name};
    row.push_back(TablePrinter::num(to_seconds(
        gvm::run_baseline(spec, w.plan, w.rounds, kProcs).turnaround)));
    for (int ngpus : {1, 2, 4}) {
      const std::vector<gpu::DeviceSpec> specs(
          static_cast<std::size_t>(ngpus), spec);
      row.push_back(TablePrinter::num(to_seconds(
          gvm::run_virtualized_multi(specs, gvm::GvmConfig{}, w.plan,
                                     w.rounds, kProcs)
              .turnaround)));
    }
    control.add_row(row);
  }
  bench::emit(control, "extension_multigpu_control");

  const OracleResult oracle = run_oracle();
  std::printf(
      "migration oracle: %d workloads, %ld moves, %lld bytes moved, "
      "%d divergent, residual %lld bytes / %zu sched clients\n",
      oracle.workloads, oracle.migrations,
      static_cast<long long>(oracle.migrated_bytes), oracle.divergence,
      static_cast<long long>(oracle.residual_source_bytes),
      oracle.residual_sched_clients);

  bool residuals_clean = true;
  for (const CellRow& cell : cells) {
    for (Bytes b : cell.r.residual_device_bytes) {
      if (b != 0) residuals_clean = false;
    }
    for (std::size_t c : cell.r.residual_sched_clients) {
      if (c != 0) residuals_clean = false;
    }
  }

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"devices\": %d,\n", devices);
    std::fprintf(f, "  \"clients\": %zu,\n", mix.size());
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellRow& cell = cells[i];
      std::fprintf(
          f,
          "    {\"policy\": \"%s\", \"rebalance\": %s, \"p95_ms\": %.4f, "
          "\"mean_ms\": %.4f, \"migrations\": %ld, \"bounced\": %ld, "
          "\"installs\": %ld, \"warm_hits\": %ld, \"migrated_bytes\": %lld}"
          "%s\n",
          cell.policy, cell.rebalance ? "true" : "false",
          cell.r.p95_seconds() * 1e3, cell.r.mean_seconds() * 1e3,
          cell.r.pool.migrations, cell.r.pool.bounced_migrations,
          cell.r.pool.installs, cell.r.pool.warm_hits,
          static_cast<long long>(cell.r.pool.migrated_bytes),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"p95_ms\": {\"static\": %.4f, \"pack\": %.4f, "
                 "\"spread\": %.4f, \"locality\": %.4f},\n",
                 p95_ms[0], p95_ms[1], p95_ms[2], p95_ms[3]);
    std::fprintf(f, "  \"residuals_clean\": %s,\n",
                 residuals_clean ? "true" : "false");
    std::fprintf(f,
                 "  \"oracle\": {\"workloads\": %d, \"migrations\": %ld, "
                 "\"migrated_bytes\": %lld, \"divergence\": %d, "
                 "\"residual_source_bytes\": %lld, "
                 "\"residual_sched_clients\": %zu}\n",
                 oracle.workloads, oracle.migrations,
                 static_cast<long long>(oracle.migrated_bytes),
                 oracle.divergence,
                 static_cast<long long>(oracle.residual_source_bytes),
                 oracle.residual_sched_clients);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return oracle.divergence == 0 && residuals_clean ? 0 : 1;
}
