// Shared main for paper Figures 11-15: per-application turnaround time vs
// process count (1-8), with and without virtualization. The application is
// selected per binary via the VGPU_APP compile definition:
//   fig11_mm, fig12_mg, fig13_blackscholes, fig14_cg, fig15_electrostatics.
#include <string>

#include "support.hpp"

using namespace vgpu;

namespace {

workloads::Workload select(const std::string& app) {
  if (app == "MM") return workloads::matmul();
  if (app == "MG") return workloads::npb_mg();
  if (app == "BlackScholes") return workloads::black_scholes();
  if (app == "CG") return workloads::npb_cg();
  if (app == "Electrostatics") return workloads::electrostatics();
  VGPU_ASSERT_MSG(false, "unknown VGPU_APP");
  return {};
}

const char* figure_of(const std::string& app) {
  if (app == "MM") return "Figure 11: MM (2048x2048 SGEMM)";
  if (app == "MG") return "Figure 12: MG (NPB class S)";
  if (app == "BlackScholes") return "Figure 13: BlackScholes (1M, Nit=512)";
  if (app == "CG") return "Figure 14: CG (NPB class S)";
  return "Figure 15: Electrostatics (100K atoms, Nit=25)";
}

}  // namespace

int main() {
  const std::string app = VGPU_APP;
  const workloads::Workload w = select(app);
  std::string csv = "fig_" + app;
  bench::turnaround_sweep(w, 8, figure_of(app), csv);
  return 0;
}
