// Reproduces paper Table II: initial benchmark profiles and model
// parameters for the two microbenchmarks (vector addition, 50M floats;
// NPB EP class B), measured on the simulated Tesla C2070.
//
// Known differences, documented in EXPERIMENTS.md:
//  * Tcomp for vector addition: the paper reports 0.038 ms, which is
//    physically inconsistent with C2070 DRAM bandwidth (600 MB of traffic
//    needs ~5 ms); our device model reports the consistent value. The
//    benchmark remains overwhelmingly I/O-bound either way.
//  * Tctx_switch: the device model uses one per-device constant (185 ms),
//    bracketed by the paper's two measurements (148.2 / 220.6 ms).
#include <iostream>

#include "support.hpp"

using namespace vgpu;

int main() {
  const gpu::DeviceSpec spec = bench::paper_device();

  struct Row {
    workloads::Workload workload;
    const char* problem;
    const char* grid;
    // Paper Table II values (ms); negative = "0" in the paper.
    double paper[5];  // Tinit, Tdata_in, Tcomp, Tdata_out, Tctx
  };
  const Row rows[] = {
      {workloads::vector_add(), "Vector Size = 50M (float)", "50K",
       {1519.386, 135.874, 0.038, 66.656, 148.226}},
      {workloads::npb_ep(30), "Class B (M=30)", "4",
       {1513.555, 0.0, 8951.346, 0.000055, 220.599}},
  };

  print_banner(std::cout,
               "Table II: initial benchmark profiles and parameters");
  TablePrinter table({"parameter", "VectorAdd (ours)", "VectorAdd (paper)",
                      "EP (ours)", "EP (paper)"});

  model::ExecutionProfile profiles[2];
  for (int i = 0; i < 2; ++i) {
    profiles[i] = gvm::measure_profile(spec, rows[i].workload.plan, 8,
                                       rows[i].workload.name);
  }
  table.add_row({"Problem Size", rows[0].problem, rows[0].problem,
                 rows[1].problem, rows[1].problem});
  table.add_row({"Grid Size",
                 std::to_string(
                     rows[0].workload.plan.kernels[0].geometry.grid_blocks),
                 rows[0].grid,
                 std::to_string(
                     rows[1].workload.plan.kernels[0].geometry.grid_blocks),
                 rows[1].grid});

  const char* names[5] = {"Tinit (ms)", "Tdata_in (ms)", "Tcomp (ms)",
                          "Tdata_out (ms)", "Tctx_switch (ms)"};
  for (int p = 0; p < 5; ++p) {
    auto value = [&](const model::ExecutionProfile& prof) {
      switch (p) {
        case 0:
          return to_ms(prof.t_init);
        case 1:
          return to_ms(prof.t_data_in);
        case 2:
          return to_ms(prof.t_comp);
        case 3:
          return to_ms(prof.t_data_out);
        default:
          return to_ms(prof.t_ctx_switch);
      }
    };
    table.add_row({names[p], TablePrinter::num(value(profiles[0])),
                   TablePrinter::num(rows[0].paper[p]),
                   TablePrinter::num(value(profiles[1])),
                   TablePrinter::num(rows[1].paper[p])});
  }
  bench::emit(table, "table2_profiles");
  return 0;
}
