// Microbenchmarks of the pluggable control-plane transports (ipc/transport):
// one protocol-record round trip through each implementation, measured
// against an echo server thread. The shm-ring transport's round trip is the
// headline number behind the live GVM's --transport=shm mode — it should
// beat the message-queue transport by well over 5x on a spin-phase hit.
#include <benchmark/benchmark.h>

#include "support.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <new>
#include <thread>

#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"

using namespace vgpu;

namespace {

std::string unique_name(const char* tag) {
  return std::string("/vgpu_tbench_") + tag + "_" +
         std::to_string(::getpid());
}

// Protocol-record-sized PODs (the live GVM's RtRequest is 64 bytes).
struct Req {
  std::int32_t op = 0;
  std::int32_t seq = 0;
  std::int64_t payload[6] = {};
};
struct Resp {
  std::int32_t ack = 0;
  std::int32_t seq = 0;
};

// Inline echo: one thread plays both sides, so the number is the pure
// transport mechanics (queue/ring operations + mandatory syscalls) with no
// scheduler involvement. This is the like-for-like transport comparison —
// on a single-CPU host the threaded variants below mostly measure context
// switches, which neither transport controls.
void BM_MqueueInlineRoundTrip(benchmark::State& state) {
  auto req_q = ipc::MessageQueue<Req>::create(unique_name("ireq"));
  auto resp_q = ipc::MessageQueue<Resp>::create(unique_name("iresp"));
  if (!req_q.ok() || !resp_q.ok()) {
    state.SkipWithError("mq creation failed");
    return;
  }
  ipc::MqClientTransport<Req, Resp> chan(&*req_q, &*resp_q);
  ipc::MqServerLane<Req, Resp> lane(&*resp_q);
  Req request;
  for (auto _ : state) {
    ++request.seq;
    (void)chan.send(request);
    auto m = req_q->receive(std::chrono::milliseconds(0));
    if (m.ok()) (void)lane.send(Resp{1, m->seq});
    auto response = chan.receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(response.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
VGPU_MICRO_BENCHMARK(BM_MqueueInlineRoundTrip);

void BM_ShmRingInlineRoundTrip(benchmark::State& state) {
  using Block = ipc::ShmChannelBlock<Req, Resp>;
  auto shm = ipc::SharedMemory::create(unique_name("iring"),
                                       sizeof(Block) +
                                           ipc::kDoorbellRegionSize);
  if (!shm.ok()) {
    state.SkipWithError("shm creation failed");
    return;
  }
  auto* block = new (shm->data()) Block();
  block->publish();
  auto* server_door_word = new (shm->data() + sizeof(Block))
      ipc::Doorbell::Word();
  ipc::RingClientTransport<Req, Resp> chan(block, server_door_word);
  ipc::RingServerLane<Req, Resp> lane(block);
  Req request;
  for (auto _ : state) {
    ++request.seq;
    (void)chan.send(request);
    auto m = lane.try_receive();
    if (m.has_value()) (void)lane.send(Resp{1, m->seq});
    auto response = chan.receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(response.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
VGPU_MICRO_BENCHMARK(BM_ShmRingInlineRoundTrip);

void BM_MqueueTransportRoundTrip(benchmark::State& state) {
  auto req_q = ipc::MessageQueue<Req>::create(unique_name("req"));
  auto resp_q = ipc::MessageQueue<Resp>::create(unique_name("resp"));
  if (!req_q.ok() || !resp_q.ok()) {
    state.SkipWithError("mq creation failed");
    return;
  }
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    ipc::MqServerLane<Req, Resp> lane(&*resp_q);
    for (;;) {
      auto m = req_q->receive(std::chrono::milliseconds(200));
      if (!m.ok()) {
        if (stop.load()) return;
        continue;
      }
      (void)lane.send(Resp{1, m->seq});
    }
  });
  ipc::MqClientTransport<Req, Resp> chan(&*req_q, &*resp_q);
  Req request;
  for (auto _ : state) {
    ++request.seq;
    (void)chan.send(request);
    auto response = chan.receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(response.ok());
  }
  stop.store(true);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
VGPU_MICRO_BENCHMARK(BM_MqueueTransportRoundTrip);

// Arg 0: spin iterations of the echo side's wait strategy. 0 parks on the
// doorbell immediately (every round trip pays two futex syscalls); the
// default spin budget keeps the hot path syscall-free.
void BM_ShmRingTransportRoundTrip(benchmark::State& state) {
  using Block = ipc::ShmChannelBlock<Req, Resp>;
  auto shm = ipc::SharedMemory::create(unique_name("ring"),
                                       sizeof(Block) +
                                           ipc::kDoorbellRegionSize);
  if (!shm.ok()) {
    state.SkipWithError("shm creation failed");
    return;
  }
  auto* block = new (shm->data()) Block();
  block->publish();
  // The server doorbell word lives past the channel block, like the live
  // GVM's stand-alone P_door region.
  auto* server_door_word = new (shm->data() + sizeof(Block))
      ipc::Doorbell::Word();

  ipc::WaitConfig server_wait;
  server_wait.spin = static_cast<int>(state.range(0));
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    ipc::RingServerLane<Req, Resp> lane(block);
    ipc::WaitStrategy waiter(server_wait);
    ipc::Doorbell door(server_door_word);
    while (!stop.load(std::memory_order_relaxed)) {
      waiter.wait([&] { return lane.has_request() ||
                               stop.load(std::memory_order_relaxed); },
                  &door,
                  std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(5));
      while (auto m = lane.try_receive()) {
        (void)lane.send(Resp{1, m->seq});
      }
    }
  });
  ipc::RingClientTransport<Req, Resp> chan(block, server_door_word);
  Req request;
  for (auto _ : state) {
    ++request.seq;
    (void)chan.send(request);
    auto response = chan.receive(std::chrono::milliseconds(1000));
    benchmark::DoNotOptimize(response.ok());
  }
  stop.store(true);
  ipc::Doorbell(server_door_word).ring();
  echo.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["spin_hits"] =
      static_cast<double>(chan.wait_stats().spin_hits);
  state.counters["blocks"] = static_cast<double>(chan.wait_stats().blocks);
}
VGPU_MICRO_BENCHMARK(BM_ShmRingTransportRoundTrip)
    ->Arg(4096)   // default spin budget: syscall-free hot path
    ->Arg(0)      // park-only: isolates the futex cost
    ->ArgNames({"spin"});

}  // namespace

VGPU_MICRO_MAIN()
