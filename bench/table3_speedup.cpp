// Reproduces paper Table III: measured vs. analytical (Eq. 5) speedup for
// the two microbenchmarks when launched with 8 processes, plus the
// deviation (relative to the measured value, the paper's convention).
//
// Note on the paper's vector-addition row (see EXPERIMENTS.md): its
// "theoretical" 2.721 corresponds to Eq. 5 *without* the context-switch
// term (Eq. 5 as printed gives 3.62 with Table II's inputs). We report
// both variants.
#include <iostream>

#include "common/math.hpp"
#include "support.hpp"

using namespace vgpu;

int main() {
  const gpu::DeviceSpec spec = bench::paper_device();
  constexpr int kProcs = 8;

  print_banner(std::cout,
               "Table III: speedup comparison, experiment vs model (8 "
               "processes)");
  TablePrinter table({"quantity", "VectorAdd", "EP"});

  const workloads::Workload ws[2] = {workloads::vector_add(),
                                     workloads::npb_ep(30)};
  double experimental[2], theoretical[2], theoretical_noctx[2];
  for (int i = 0; i < 2; ++i) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, ws[i].plan, kProcs, ws[i].name);
    const bench::Comparison c = bench::compare(ws[i], kProcs);
    experimental[i] = c.speedup();
    theoretical[i] = model::speedup(p, kProcs);
    theoretical_noctx[i] = model::speedup_excluding_ctx(p, kProcs);
  }

  auto row = [&](const char* name, const double v[2], int precision = 3) {
    table.add_row({name, TablePrinter::num(v[0], precision),
                   TablePrinter::num(v[1], precision)});
  };
  row("Experimental Speedup (ours)", experimental);
  row("Theoretical Speedup, Eq.5 (ours)", theoretical);
  row("Theoretical Speedup, Eq.5 w/o Tctx (ours)", theoretical_noctx);
  const double deviation[2] = {
      deviation_percent(theoretical[0], experimental[0]),
      deviation_percent(theoretical[1], experimental[1])};
  row("Theoretical Deviation % (ours)", deviation, 2);

  const double paper_exp[2] = {2.300, 7.394};
  const double paper_theo[2] = {2.721, 8.341};
  const double paper_dev[2] = {18.306, 12.810};
  row("Experimental Speedup (paper)", paper_exp);
  row("Theoretical Speedup (paper)", paper_theo);
  row("Theoretical Deviation % (paper)", paper_dev, 3);

  bench::emit(table, "table3_speedup");
  return 0;
}
