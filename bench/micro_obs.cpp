// Microbenchmarks of the observability subsystem's hot paths: the costs
// the instrumented runtime pays per event.
//
//   BM_CounterAdd        relaxed atomic add on a pre-registered handle
//   BM_HistogramObserve  linear bucket scan + two adds (8 pow2 buckets)
//   BM_TracerSpan        begin_span + end_span, tracing off vs on — the
//                        off cost is what every disabled-observability
//                        run pays at each span site
//
// Run with --reps=K for warmup + K-repetition median/p95 aggregates.
#include <benchmark/benchmark.h>

#include "support.hpp"

#include "obs/obs.hpp"

using namespace vgpu;

namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter->add();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
VGPU_MICRO_BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* hist =
      registry.histogram("bench.hist", obs::pow2_bounds(8));
  double v = 0.0;
  for (auto _ : state) {
    hist->observe(v);
    v = v < 256.0 ? v + 1.0 : 0.0;
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations());
}
VGPU_MICRO_BENCHMARK(BM_HistogramObserve);

// Arg 0: tracing on/off.
void BM_TracerSpan(benchmark::State& state) {
  obs::TracerConfig config;
  config.enabled = state.range(0) != 0;
  obs::Tracer tracer(config);
  tracer.ensure_thread();
  for (auto _ : state) {
    const SimTime t0 = tracer.begin_span();
    tracer.end_span(t0, obs::Phase::kKernel, /*lane=*/0, /*aux=*/1);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(config.enabled ? "tracing" : "disabled");
  if (config.enabled) {
    state.counters["dropped"] = static_cast<double>(tracer.dropped());
  }
}
VGPU_MICRO_BENCHMARK(BM_TracerSpan)->Arg(0)->Arg(1)->ArgNames({"trace"});

}  // namespace

VGPU_MICRO_MAIN()
