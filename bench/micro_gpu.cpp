// Microbenchmarks of the GPU device model: occupancy computation, the
// memory allocator, and end-to-end kernel scheduling throughput (chunks
// placed per second of wall time).
#include <benchmark/benchmark.h>

#include "des/sim.hpp"
#include "gpu/device.hpp"
#include "gpu/occupancy.hpp"

using namespace vgpu;

namespace {

void BM_OccupancyCompute(benchmark::State& state) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  gpu::KernelGeometry g{1000, 256, 21, 4096};
  for (auto _ : state) {
    g.regs_per_thread = 16 + static_cast<int>(state.iterations() % 16);
    benchmark::DoNotOptimize(gpu::compute_occupancy(spec, g));
  }
}
BENCHMARK(BM_OccupancyCompute);

void BM_AllocatorChurn(benchmark::State& state) {
  for (auto _ : state) {
    gpu::DeviceMemoryAllocator alloc(1 * kGiB);
    std::vector<gpu::DevPtr> live;
    for (int i = 0; i < 1000; ++i) {
      auto p = alloc.allocate(1 + (i * 7919) % 65536);
      if (p.ok()) live.push_back(*p);
      if (live.size() > 500) {
        (void)alloc.free(live[live.size() / 2]);
        live.erase(live.begin() + static_cast<long>(live.size()) / 2);
      }
    }
    for (gpu::DevPtr p : live) (void)alloc.free(p);
    benchmark::DoNotOptimize(alloc.used());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_AllocatorChurn);

void BM_KernelScheduling(benchmark::State& state) {
  // Wall-clock cost of simulating a large-grid kernel (many chunks).
  const long blocks = state.range(0);
  for (auto _ : state) {
    des::Simulator sim;
    gpu::Device dev(sim, gpu::tesla_c2070());
    sim.spawn([](gpu::Device& d, long blocks) -> des::Task<> {
      const gpu::ContextId ctx = co_await d.create_context();
      gpu::KernelLaunch l;
      l.name = "bench";
      l.geometry = gpu::KernelGeometry{blocks, 1024, 20, 0};
      l.cost = gpu::KernelCost{100.0, 12.0, 1.0};
      co_await d.launch_kernel(ctx, l);
    }(dev, blocks));
    sim.run();
    benchmark::DoNotOptimize(dev.stats().chunks_executed);
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_KernelScheduling)->Arg(1000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
