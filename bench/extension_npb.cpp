// Extension study: two more NPB kernels (FT and IS) under virtualization,
// completing the family the paper samples (EP/MG/CG). FT's 128-block grid
// leaves room for co-execution; IS is transfer-bound like vector addition.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

int main() {
  print_banner(std::cout,
               "Extension: NPB FT and IS under GPU virtualization");
  TablePrinter table({"benchmark", "processes", "no-virt (s)", "virt (s)",
                      "speedup"});
  for (const workloads::Workload& w :
       {workloads::npb_ft(), workloads::npb_is()}) {
    for (int n : {1, 4, 8}) {
      const bench::Comparison c = bench::compare(w, n);
      table.add_row({w.name, std::to_string(n),
                     TablePrinter::num(to_seconds(c.baseline.turnaround)),
                     TablePrinter::num(to_seconds(c.virtualized.turnaround)),
                     TablePrinter::num(c.speedup(), 2)});
    }
  }
  bench::emit(table, "extension_npb");
  return 0;
}
