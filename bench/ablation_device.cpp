// Ablations of the device capabilities the virtualization layer exploits:
//  * concurrent-kernel cap (1 / 4 / 16): Fermi generations differ; with a
//    cap of 1 the GVM can only pipeline I/O against one kernel;
//  * copy engines (1 vs 2): bidirectional transfer overlap;
//  * a pre-Fermi device (Tesla C1060 profile: no concurrent kernels, no
//    copy/compute overlap) — virtualization still eliminates context
//    switches and per-process initialization, the paper's minimum win.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

namespace {

void run_device(TablePrinter& table, const char* name,
                const gpu::DeviceSpec& spec, const workloads::Workload& w,
                int nprocs) {
  const gvm::RunResult base =
      gvm::run_baseline(spec, w.plan, w.rounds, nprocs);
  const gvm::RunResult virt = gvm::run_virtualized(
      spec, bench::paper_gvm_config(), w.plan, w.rounds, nprocs);
  table.add_row({name, w.name,
                 TablePrinter::num(to_seconds(base.turnaround)),
                 TablePrinter::num(to_seconds(virt.turnaround)),
                 TablePrinter::num(static_cast<double>(base.turnaround) /
                                       static_cast<double>(virt.turnaround),
                                   2)});
}

}  // namespace

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout, "Ablation: device capabilities (8 processes)");
  TablePrinter table({"device variant", "workload", "no-virt (s)",
                      "virt (s)", "speedup"});

  // 20M elements (240 MB per process) so that eight baseline contexts fit
  // on every device variant, including the 4 GB C1060.
  const workloads::Workload io = workloads::vector_add(20'000'000);
  const workloads::Workload comp = workloads::npb_ep(30);

  for (const auto& w : {io, comp}) {
    run_device(table, "C2070 (paper)", bench::paper_device(), w, kProcs);

    for (int cap : {1, 4}) {
      gpu::DeviceSpec spec = bench::paper_device();
      spec.max_concurrent_kernels = cap;
      const std::string name =
          "C2070, concurrent-kernel cap " + std::to_string(cap);
      run_device(table, name.c_str(), spec, w, kProcs);
    }

    {
      gpu::DeviceSpec spec = bench::paper_device();
      spec.copy_engines = 1;
      run_device(table, "C2070, single copy engine", spec, w, kProcs);
    }

    run_device(table, "C1060 (pre-Fermi)", gpu::tesla_c1060(), w, kProcs);
  }

  bench::emit(table, "ablation_device");
  return 0;
}
