// Reproduces paper Figure 9: process turnaround time versus the number of
// SPMD processes (1-8) for the I/O-intensive microbenchmark (vector
// addition, left panel) and the compute-intensive one (NPB EP class B,
// right panel), with and without virtualization.
//
// Expected shapes (paper Section VI):
//  * without virtualization both curves grow ~linearly, with a slope of
//    one full task cycle plus one context switch;
//  * with virtualization the I/O-intensive curve still grows (bounded by
//    MAX(Tin, Tout) per process) but much more slowly;
//  * with virtualization the compute-intensive curve stays ~flat: the
//    4-block EP grids from all processes execute concurrently.
#include "support.hpp"

using namespace vgpu;

int main() {
  bench::turnaround_sweep(workloads::vector_add(), 8,
                          "Figure 9 (left): I/O-intensive (VectorAdd, 50M)",
                          "fig9_vecadd");
  bench::turnaround_sweep(workloads::npb_ep(30), 8,
                          "Figure 9 (right): compute-intensive (EP class B)",
                          "fig9_ep");
  return 0;
}
