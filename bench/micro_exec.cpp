// Microbenchmarks of the src/exec grid-sharded execution engine: the two
// acceptance claims of the engine PR, measured head-to-head.
//
//   BM_SgemmSharded     one sgemm n=2048 launch, serial vs. sharded at
//                       1/2/4 workers — single-kernel scaling (the paper's
//                       "one context fills the SMs" claim, on host cores).
//   BM_FullTaskCycle    the live protocol at N=2 clients, --exec=serial
//                       vs. --exec=sharded — cohort throughput including
//                       the chunked copy/compute overlap on the staged
//                       data plane.
//
// Run with --reps=K for warmup + K-repetition median/p95 aggregates.
#include <benchmark/benchmark.h>

#include "support.hpp"

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "exec/engine.hpp"
#include "kernels/matmul.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_mex_") + tag + "_" + std::to_string(::getpid());
}

// Arg 0: worker count; 0 = the serial oracle (no engine at all).
void BM_SgemmSharded(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int n = 2048;
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size());
  std::vector<float> c(a.size());
  Rng rng(42);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  if (workers == 0) {
    for (auto _ : state) {
      kernels::sgemm(a, b, c, n);
      benchmark::DoNotOptimize(c.data());
    }
    state.SetLabel("serial");
  } else {
    exec::ExecConfig config;
    config.workers = workers;
    exec::ExecEngine engine(config);
    for (auto _ : state) {
      kernels::sgemm(a, b, c, n, engine.executor());
      benchmark::DoNotOptimize(c.data());
    }
    engine.shutdown();
    state.SetLabel("sharded/" + std::to_string(workers));
    state.counters["shards"] =
        static_cast<double>(engine.stats().shards_executed.load());
    state.counters["steals"] =
        static_cast<double>(engine.stats().steals.load());
  }
  const double flops = 2.0 * n * static_cast<double>(n) * n;
  state.counters["flops"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
VGPU_MICRO_BENCHMARK(BM_SgemmSharded)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"workers"})
    ->UseRealTime();

// Arg 0: exec mode (0 = serial, 1 = sharded). Two in-process client
// threads drive full SND/STR/STP/RCV cycles against one server, so the
// sharded number includes chunked stage-in/write-back overlap.
void BM_FullTaskCycle(benchmark::State& state) {
  const bool sharded = state.range(0) != 0;
  const long n = 1 << 18;
  const int clients = 2;
  const std::string prefix = unique_prefix(sharded ? "shard" : "serial");
  rt::RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = clients;
  config.workers = sharded ? 4 : clients;
  config.exec = sharded ? rt::ExecMode::kSharded : rt::ExecMode::kSerial;
  rt::RtServer server(config, rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {n, 0, 0, 0};

  for (auto _ : state) {
    // The STR barrier is cohort-wide, so each iteration runs both clients
    // through one full cycle on their own threads.
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int id = 0; id < clients; ++id) {
      threads.emplace_back([&, id] {
        auto client = rt::RtClient::connect(prefix, id, 2 * n * 4, n * 4);
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto* in = reinterpret_cast<float*>(client->input().data());
        for (long i = 0; i < 2 * n; ++i) in[i] = static_cast<float>(i);
        bool ok = client->req(*kid, params).ok();
        ok = ok && client->snd().ok();
        ok = ok && client->str().ok();
        ok = ok && client->wait_done(std::chrono::microseconds(50)).ok();
        ok = ok && client->rcv().ok();
        ok = ok && client->rls().ok();
        if (!ok) failures.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    if (failures.load() != 0) {
      state.SkipWithError("client cycle failed");
      break;
    }
  }
  server.stop();
  state.SetLabel(rt::exec_mode_name(config.exec));
  state.SetBytesProcessed(state.iterations() * clients * 3 * n * 4);
  state.counters["overlap_bytes"] =
      static_cast<double>(server.stats().overlap_bytes.load());
  state.counters["shards"] =
      static_cast<double>(server.exec_counters().shards_executed);
  state.counters["steals"] =
      static_cast<double>(server.exec_counters().steals);
  // Registry snapshot (rt.*/exec.*/sched.* after stop()) into the JSON.
  bench::report_registry(state, server.obs().metrics());
}
VGPU_MICRO_BENCHMARK(BM_FullTaskCycle)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"sharded"})
    ->UseRealTime();

}  // namespace

VGPU_MICRO_MAIN()
