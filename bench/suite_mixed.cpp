// Trace-driven multi-tenant regression suite (ROADMAP item 5;
// docs/workloads.md): replays the canonical tenant mixes on both the DES
// path (gvm::run_mixed, every scheduler policy) and the live RtServer
// path (policy x transport x exec sweep, plus a vmem-on probe), and
// emits the per-tenant SLO tables to BENCH_mix.json — the artifact CI's
// bench-mix job jq-gates on attainment floors, zero errors, and zero
// leaked sessions/segments.
//
//   suite_mixed [--smoke] [--out=BENCH_mix.json] [--seed=S]
//               [--horizon-us=N] [--mixes=a,b] [--des-only]
//
// --smoke shrinks the horizon and compresses replay time for CI; the
// tenant structure, rates and SLO targets are unchanged.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support.hpp"
#include "sched/scheduler.hpp"
#include "workloads/trace/replay.hpp"
#include "workloads/trace/trace.hpp"

using namespace vgpu;
namespace wtrace = vgpu::workloads::trace;

namespace {

struct Options {
  bool smoke = false;
  bool des_only = false;
  std::string out = "BENCH_mix.json";
  std::uint64_t seed = 42;
  std::int64_t horizon_us = 0;  // 0 = mix default (smoke overrides)
  std::vector<std::string> mixes = wtrace::canonical_mix_names();
};

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--smoke") {
      o->smoke = true;
    } else if (arg == "--des-only") {
      o->des_only = true;
    } else if (const char* v = val("--out=")) {
      o->out = v;
    } else if (const char* v = val("--seed=")) {
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--horizon-us=")) {
      o->horizon_us = std::strtoll(v, nullptr, 10);
    } else if (const char* v = val("--mixes=")) {
      o->mixes.clear();
      std::string list = v;
      std::string::size_type pos = 0;
      while (pos != std::string::npos) {
        const auto comma = list.find(',', pos);
        o->mixes.push_back(list.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: suite_mixed [--smoke] [--des-only] [--out=FILE]"
                   " [--seed=S] [--horizon-us=N] [--mixes=a,b]\n");
      return false;
    }
  }
  return true;
}

sched::SchedulerConfig sched_config(const std::string& policy) {
  sched::SchedulerConfig config;
  const bool ok = sched::parse_policy(policy, &config.policy);
  VGPU_ASSERT_MSG(ok, "bad policy spelling in sweep table");
  return config;
}

/// Rolled-up gate numbers across every run in the sweep.
struct Gate {
  long errors = 0;
  long leaked_slots = 0;
  long leaked_segments = 0;
  double min_attainment_pct = 100.0;
  double min_jain = 1.0;
  long runs = 0;

  void fold(const wtrace::ReplayResult& r, bool live) {
    ++runs;
    errors += r.errors;
    if (live) {
      leaked_slots += r.leaked_slots;
      leaked_segments += r.leaked_segments;
    }
    for (const obs::TenantSlo& t : r.report.tenants) {
      if (t.target.p99_ms > 0.0 && t.attainment_pct < min_attainment_pct) {
        min_attainment_pct = t.attainment_pct;
      }
    }
    if (r.report.jain_fairness < min_jain) min_jain = r.report.jain_fairness;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  if (opt.smoke && opt.horizon_us <= 0) opt.horizon_us = 250'000;

  const gpu::DeviceSpec spec = bench::paper_device();
  const std::vector<std::string> des_policies = {"barrier", "tq", "fair",
                                                 "prio"};
  const std::vector<std::string> live_policies = {"fair", "tq"};
  const std::vector<std::string> transports = {"shm", "mq"};
  const std::vector<std::string> execs = {"serial", "sharded"};

  Gate gate;
  std::string mixes_json;
  bool first_mix = true;
  for (const std::string& mix_name : opt.mixes) {
    auto trace =
        wtrace::canonical_mix(mix_name, opt.horizon_us, opt.seed);
    if (!trace.ok()) {
      std::fprintf(stderr, "bad mix '%s': %s\n", mix_name.c_str(),
                   trace.status().to_string().c_str());
      return 2;
    }
    std::printf("=== mix %s: %zu tenants, %zu open-loop ops, horizon %lld "
                "us ===\n",
                mix_name.c_str(), trace->tenants.size(), trace->ops.size(),
                static_cast<long long>(trace->horizon_us));

    std::string des_json;
    bool first = true;
    for (const std::string& policy : des_policies) {
      gvm::GvmConfig config = bench::paper_gvm_config();
      config.sched = sched_config(policy);
      auto r = wtrace::replay_des(*trace, spec, config);
      if (!r.ok()) {
        std::fprintf(stderr, "des replay failed: %s\n",
                     r.status().to_string().c_str());
        return 1;
      }
      gate.fold(*r, /*live=*/false);
      std::printf("--- des policy=%s ---\n%s", policy.c_str(),
                  r->report.format_table().c_str());
      des_json += std::string(first ? "\n" : ",\n") +
                  "        {\"policy\": \"" + policy + "\", \"report\": " +
                  r->report.to_json() + "}";
      first = false;
    }

    std::string live_json;
    first = true;
    if (!opt.des_only) {
      struct LiveCase {
        std::string policy, transport, exec;
        bool vmem;
      };
      std::vector<LiveCase> cases;
      for (const auto& p : live_policies) {
        for (const auto& t : transports) {
          for (const auto& e : execs) {
            cases.push_back({p, t, e, false});
          }
        }
      }
      // The vmem on/off axis rides one representative combo per mix (a
      // full 2x cross would double an already wide sweep).
      cases.push_back({"fair", "shm", "serial", true});
      for (const LiveCase& c : cases) {
        wtrace::LiveReplayOptions lopts;
        lopts.sched = sched_config(c.policy);
        lopts.transport = c.transport;
        lopts.exec = c.exec;
        lopts.vmem = c.vmem;
        if (opt.smoke) lopts.time_scale = 0.5;
        auto r = wtrace::replay_live(*trace, lopts);
        if (!r.ok()) {
          std::fprintf(stderr, "live replay failed: %s\n",
                       r.status().to_string().c_str());
          return 1;
        }
        gate.fold(*r, /*live=*/true);
        std::printf("--- live policy=%s transport=%s exec=%s vmem=%s ---\n%s",
                    c.policy.c_str(), c.transport.c_str(), c.exec.c_str(),
                    c.vmem ? "on" : "off",
                    r->report.format_table().c_str());
        live_json +=
            std::string(first ? "\n" : ",\n") + "        {\"policy\": \"" +
            c.policy + "\", \"transport\": \"" + c.transport +
            "\", \"exec\": \"" + c.exec +
            "\", \"vmem\": " + (c.vmem ? "true" : "false") +
            ", \"errors\": " + std::to_string(r->errors) +
            ", \"leaked_slots\": " + std::to_string(r->leaked_slots) +
            ", \"leaked_segments\": " + std::to_string(r->leaked_segments) +
            ", \"report\": " + r->report.to_json() + "}";
        first = false;
      }
    }

    mixes_json += std::string(first_mix ? "\n" : ",\n") +
                  "    {\"mix\": \"" + mix_name + "\",\n" +
                  "      \"ops\": " + std::to_string(trace->ops.size()) +
                  ",\n      \"des\": [" + des_json + "\n      ],\n" +
                  "      \"live\": [" + live_json + "\n      ]}";
    first_mix = false;
  }

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"smoke\": %s,\n", opt.smoke ? "true" : "false");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opt.seed));
  std::fprintf(f, "  \"mixes\": [%s\n  ],\n", mixes_json.c_str());
  std::fprintf(f,
               "  \"gate\": {\"runs\": %ld, \"total_errors\": %ld, "
               "\"total_leaked_slots\": %ld, \"total_leaked_segments\": "
               "%ld, \"min_attainment_pct\": %.3f, \"min_jain\": %.4f}\n",
               gate.runs, gate.errors, gate.leaked_slots,
               gate.leaked_segments, gate.min_attainment_pct, gate.min_jain);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("suite_mixed: %ld runs | errors %ld | leaked slots %ld "
              "segments %ld | min attainment %.1f%% | min jain %.3f -> %s\n",
              gate.runs, gate.errors, gate.leaked_slots,
              gate.leaked_segments, gate.min_attainment_pct, gate.min_jain,
              opt.out.c_str());
  const bool failed = gate.errors > 0 || gate.leaked_slots != 0 ||
                      gate.leaked_segments != 0;
  return failed ? 1 : 0;
}
