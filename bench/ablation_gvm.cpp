// Ablations of the GVM design choices called out in DESIGN.md:
//  * STR barriers on/off — the paper co-flushes all client streams so that
//    Fermi's concurrency features see the whole SPMD wave at once;
//  * pinned vs pageable staging — async copy/compute overlap requires
//    pinned host memory (paper Section V);
//  * shared-memory staging copies on/off — the dominant source of the
//    Figure 10 overhead.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

namespace {

void run_variant(TablePrinter& table, const char* name,
                 const gvm::GvmConfig& config,
                 const workloads::Workload& w, int nprocs) {
  const gvm::RunResult r = gvm::run_virtualized(bench::paper_device(), config,
                                                w.plan, w.rounds, nprocs);
  table.add_row({name, w.name, TablePrinter::num(to_seconds(r.turnaround)),
                 std::to_string(r.device.max_open_kernels),
                 std::to_string(r.gvm.flushes)});
}

}  // namespace

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout, "Ablation: GVM design choices (8 processes)");
  TablePrinter table({"variant", "workload", "virt turnaround (s)",
                      "peak concurrent kernels", "flushes"});

  const workloads::Workload io = workloads::vector_add();
  const workloads::Workload comp = workloads::npb_ep(30);

  for (const auto& w : {io, comp}) {
    gvm::GvmConfig base = bench::paper_gvm_config();
    run_variant(table, "paper configuration", base, w, kProcs);

    gvm::GvmConfig no_barrier = base;
    no_barrier.use_barriers = false;
    run_variant(table, "no STR barrier", no_barrier, w, kProcs);

    gvm::GvmConfig pageable = base;
    pageable.pinned_staging = false;
    run_variant(table, "pageable staging", pageable, w, kProcs);

    gvm::GvmConfig free_staging = base;
    free_staging.model_staging_copies = false;
    run_variant(table, "zero-cost shm staging", free_staging, w, kProcs);
  }

  bench::emit(table, "ablation_gvm");
  return 0;
}
