// Ablations of the GVM design choices called out in DESIGN.md:
//  * STR barriers on/off — the paper co-flushes all client streams so that
//    Fermi's concurrency features see the whole SPMD wave at once;
//  * pinned vs pageable staging — async copy/compute overlap requires
//    pinned host memory (paper Section V);
//  * shared-memory staging copies on/off — the dominant source of the
//    Figure 10 overhead.
#include <algorithm>
#include <iostream>

#include "support.hpp"

using namespace vgpu;

namespace {

bool invariants_ok = true;

void check(bool condition, const char* what, const char* variant) {
  if (condition) return;
  std::cout << "INVARIANT VIOLATION (" << variant << "): " << what << "\n";
  invariants_ok = false;
}

gvm::RunResult run_variant(TablePrinter& table, const char* name,
                           const gvm::GvmConfig& config,
                           const workloads::Workload& w, int nprocs) {
  const gvm::RunResult r = gvm::run_virtualized(bench::paper_device(), config,
                                                w.plan, w.rounds, nprocs);
  table.add_row({name, w.name, TablePrinter::num(to_seconds(r.turnaround)),
                 std::to_string(r.device.max_open_kernels),
                 std::to_string(r.gvm.flushes)});
  // Flush accounting across the barrier ablation: with barriers each SPMD
  // round is one cohort co-flush; without them (routed through
  // BarrierCoFlush at width 1) every client's STR flushes individually.
  check(r.turnaround > 0, "non-positive turnaround", name);
  const long expected_flushes =
      config.use_barriers ? w.rounds
                          : static_cast<long>(w.rounds) * nprocs;
  check(r.gvm.flushes == expected_flushes, "flush count mismatch", name);
  check(r.sched.grants == static_cast<long>(w.rounds) * nprocs,
        "scheduler grants != rounds x clients", name);
  return r;
}

}  // namespace

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout, "Ablation: GVM design choices (8 processes)");
  TablePrinter table({"variant", "workload", "virt turnaround (s)",
                      "peak concurrent kernels", "flushes"});

  const workloads::Workload io = workloads::vector_add();
  const workloads::Workload comp = workloads::npb_ep(30);

  for (const auto& w : {io, comp}) {
    gvm::GvmConfig base = bench::paper_gvm_config();
    const gvm::RunResult paper =
        run_variant(table, "paper configuration", base, w, kProcs);

    gvm::GvmConfig no_barrier = base;
    no_barrier.use_barriers = false;
    const gvm::RunResult solo =
        run_variant(table, "no STR barrier", no_barrier, w, kProcs);
    // Paper claim: for a uniform SPMD wave (everyone arrives together) the
    // barrier costs nothing — co-flushing the cohort and flushing each STR
    // on arrival land within 1% of each other in turnaround.
    const double ratio = static_cast<double>(solo.turnaround) /
                         static_cast<double>(paper.turnaround);
    check(ratio > 0.99 && ratio < 1.01,
          "barrier vs width-1 turnaround diverges on a uniform wave",
          w.name.c_str());

    gvm::GvmConfig pageable = base;
    pageable.pinned_staging = false;
    run_variant(table, "pageable staging", pageable, w, kProcs);

    gvm::GvmConfig free_staging = base;
    free_staging.model_staging_copies = false;
    run_variant(table, "zero-cost shm staging", free_staging, w, kProcs);
  }

  bench::emit(table, "ablation_gvm");
  return invariants_ok ? 0 : 1;
}
