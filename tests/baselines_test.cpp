// Tests for the related-work comparator implementations: each alternative
// must exhibit the cost structure the paper attributes to it.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::baselines {
namespace {

gpu::DeviceSpec spec() { return gpu::tesla_c2070(); }

TEST(RemoteGpu, NetworkDominatesIoHeavyWork) {
  const workloads::Workload w = workloads::vector_add(5'000'000);
  const gvm::RunResult native = gvm::run_baseline(spec(), w.plan, 1, 4);
  const RunSummary remote =
      run_remote_gpu(spec(), RemoteGpuConfig{}, w.plan, 1, 4);
  // 60 MB per process over 1 GbE adds ~480 ms each: remote must be far
  // slower than local native sharing for I/O-heavy tasks.
  EXPECT_GT(remote.turnaround, native.turnaround);
  EXPECT_GT(remote.turnaround - native.turnaround, seconds(1.0));
}

TEST(RemoteGpu, ComputeHeavyWorkPaysRpcGapsNotBandwidth) {
  const workloads::Workload w = workloads::npb_ep(26);  // ~560 ms, no data
  const gvm::RunResult native =
      gvm::run_baseline(spec(), w.plan, w.rounds, 4);
  const RunSummary remote =
      run_remote_gpu(spec(), RemoteGpuConfig{}, w.plan, w.rounds, 4);
  // No bulk data, so the NIC is irrelevant — but the RPC gap between a
  // process's stages lets the device switch contexts mid-task, so remote
  // access costs extra context switches rather than bandwidth.
  const double ratio = static_cast<double>(remote.turnaround) /
                       static_cast<double>(native.turnaround);
  EXPECT_LT(ratio, 1.5);
  EXPECT_GT(remote.device.ctx_switches, native.device.ctx_switches);
}

TEST(RemoteGpu, FasterNicShrinksTheGap) {
  const workloads::Workload w = workloads::vector_add(5'000'000);
  RemoteGpuConfig slow;                      // 1 GbE
  RemoteGpuConfig fast;
  fast.network_bw = 1.25e9;                  // 10 GbE
  const RunSummary s1 = run_remote_gpu(spec(), slow, w.plan, 1, 4);
  const RunSummary s2 = run_remote_gpu(spec(), fast, w.plan, 1, 4);
  EXPECT_LT(s2.turnaround, s1.turnaround);
}

TEST(VmPassthrough, AddsInterposerAndStagingCosts) {
  const workloads::Workload w = workloads::vector_add(5'000'000);
  const gvm::RunResult native = gvm::run_baseline(spec(), w.plan, 1, 4);
  const RunSummary vm =
      run_vm_passthrough(spec(), VmConfig{}, w.plan, 1, 4);
  EXPECT_GT(vm.turnaround, native.turnaround);
  // Context-per-VM: the switch serialization is still there, and the
  // interposer gaps between stages make it worse than native (the device
  // switches away mid-task while the guest traps to the backend).
  EXPECT_GE(vm.device.ctx_switches, 3);
}

TEST(VmPassthrough, NoCrossVmKernelConcurrency) {
  const workloads::Workload w = workloads::npb_ep(24);
  const RunSummary vm =
      run_vm_passthrough(spec(), VmConfig{}, w.plan, w.rounds, 4);
  EXPECT_EQ(vm.device.max_open_kernels, 1);  // separate contexts serialize
}

TEST(KernelMerge, EliminatesContextSwitchesAndInit) {
  const workloads::Workload w = workloads::npb_ep(24);
  const RunSummary merged = run_kernel_merge(spec(), w.plan, w.rounds, 8);
  EXPECT_EQ(merged.device.ctx_switches, 0);
  EXPECT_EQ(merged.device.ctx_creates, 1);
  EXPECT_EQ(merged.device.kernels_completed, 1);  // one merged launch
}

TEST(KernelMerge, BeatsNativeButMergedGridGrows) {
  const workloads::Workload w = workloads::npb_ep(24);
  const gvm::RunResult native =
      gvm::run_baseline(spec(), w.plan, w.rounds, 8);
  const RunSummary merged = run_kernel_merge(spec(), w.plan, w.rounds, 8);
  EXPECT_LT(merged.turnaround, native.turnaround);
}

TEST(KernelMerge, NoCopyComputeOverlapUnlikeGvm) {
  // For an I/O + compute mixed task, the GVM's pipelined streams beat the
  // merge-everything-then-launch structure (the paper's critique of [12]).
  workloads::Workload w = workloads::vector_add(20'000'000);
  w.plan.kernels[0].cost.flops_per_thread = 300.0;  // give compute weight
  const RunSummary merged = run_kernel_merge(spec(), w.plan, w.rounds, 8);
  const gvm::RunResult virt = gvm::run_virtualized(
      spec(), gvm::GvmConfig{}, w.plan, w.rounds, 8);
  EXPECT_LT(virt.turnaround, merged.turnaround);
}

TEST(Comparison, GvmWinsAcrossTheBoardOnThePaperWorkloads) {
  for (const auto& w : {workloads::vector_add(10'000'000),
                        workloads::npb_ep(26)}) {
    const SimDuration gvm_t =
        gvm::run_virtualized(spec(), gvm::GvmConfig{}, w.plan, w.rounds, 8)
            .turnaround;
    EXPECT_LT(gvm_t, gvm::run_baseline(spec(), w.plan, w.rounds, 8).turnaround)
        << w.name;
    EXPECT_LT(gvm_t,
              run_remote_gpu(spec(), RemoteGpuConfig{}, w.plan, w.rounds, 8)
                  .turnaround)
        << w.name;
    EXPECT_LT(gvm_t,
              run_vm_passthrough(spec(), VmConfig{}, w.plan, w.rounds, 8)
                  .turnaround)
        << w.name;
    EXPECT_LE(gvm_t,
              run_kernel_merge(spec(), w.plan, w.rounds, 8).turnaround)
        << w.name;
  }
}

}  // namespace
}  // namespace vgpu::baselines
