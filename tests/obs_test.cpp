// Tests for the observability subsystem: metrics registry (concurrent
// exactness, histogram bucket semantics, JSON export), span tracer (ring
// semantics, drop accounting, Chrome-trace round trip through trace_io),
// model residuals (Eq. 4/6 arithmetic on synthetic spans), and the log
// bridge (VGPU_LOG parsing, thread scope tags, per-level line counters).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "model/model.hpp"
#include "obs/log_capture.hpp"
#include "obs/metrics.hpp"
#include "obs/residuals.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace vgpu::obs {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/vgpu_obs_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".json";
}

struct TempFile {
  explicit TempFile(const char* tag) : path(temp_path(tag)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Registry, HandlesAreStableAndIdempotent) {
  Registry registry;
  Counter* a = registry.counter("rt.requests");
  Counter* b = registry.counter("rt.requests");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3);
  EXPECT_EQ(registry.find_counter("rt.requests"), a);
  EXPECT_EQ(registry.find_counter("no.such"), nullptr);

  Gauge* g = registry.gauge("sched.mean_wait_ms");
  EXPECT_EQ(registry.gauge("sched.mean_wait_ms"), g);
  g->set(1.5);
  g->add(0.25);
  EXPECT_DOUBLE_EQ(g->value(), 1.75);

  Histogram* h = registry.histogram("rt.batch_depth", pow2_bounds(3));
  // Later registrations ignore their bounds argument and share the handle.
  EXPECT_EQ(registry.histogram("rt.batch_depth", {99.0}), h);
  EXPECT_EQ(h->bounds().size(), 3u);
}

// The ISSUE's multi-threaded hammer: concurrent adds and observes from
// many threads must land exactly — the relaxed hot path may reorder but
// never lose or duplicate an increment.
TEST(Registry, ConcurrentHammerCountsExactly) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter* counter = registry.counter("hammer.counter");
  Histogram* hist = registry.histogram("hammer.hist", pow2_bounds(4));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the threads also race registration of the same instruments.
      Counter* c = (t % 2 == 0) ? counter : registry.counter("hammer.counter");
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        hist->observe(static_cast<double>(i % 16));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter->value(), static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<long>(kThreads) * kPerThread);
  long bucket_total = 0;
  for (std::size_t i = 0; i < hist->buckets(); ++i) {
    bucket_total += hist->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, hist->count());
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 3.0, 7.0});
  ASSERT_EQ(hist.buckets(), 4u);  // 3 bounded + overflow

  // Bucket i counts samples <= bounds[i]; boundaries land in their own
  // bucket, one past a boundary lands in the next.
  hist.observe(0.0);  // bucket 0
  hist.observe(1.0);  // bucket 0 (== bound)
  hist.observe(2.0);  // bucket 1
  hist.observe(3.0);  // bucket 1 (== bound)
  hist.observe(7.0);  // bucket 2 (== last bound)
  hist.observe(8.0);  // overflow
  hist.observe(1e9);  // overflow

  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 2);
  EXPECT_EQ(hist.bucket_count(2), 1);
  EXPECT_EQ(hist.bucket_count(3), 2);
  EXPECT_EQ(hist.count(), 7);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0 + 1.0 + 2.0 + 3.0 + 7.0 + 8.0 + 1e9);
}

TEST(Histogram, AddCountMergesPreBucketedSamples) {
  Histogram hist(pow2_bounds(3));  // bounds 1, 2, 4 + overflow
  hist.add_count(1, 10);
  hist.add_count(3, 2);  // overflow bucket
  EXPECT_EQ(hist.bucket_count(1), 10);
  EXPECT_EQ(hist.bucket_count(3), 2);
  EXPECT_EQ(hist.count(), 12);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);  // original samples are gone
}

TEST(Registry, Pow2BoundsShape) {
  const std::vector<double> bounds = pow2_bounds(4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Registry, SnapshotIsNameSortedAndJsonExports) {
  Registry registry;
  registry.counter("zeta")->add(2);
  registry.counter("alpha")->add(1);
  registry.gauge("mid")->set(0.5);
  registry.histogram("hist", {1.0})->observe(0.5);

  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].counts.size(), 2u);
  EXPECT_EQ(snap.histograms[0].count, 1);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  TempFile file("metrics");
  ASSERT_TRUE(registry.write_json(file.path).ok());
  std::ifstream in(file.path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  const SimTime begin = tracer.begin_span();
  EXPECT_EQ(begin, kSpanDisabled);
  tracer.end_span(begin, Phase::kKernel, 0, 1);  // no-op
  tracer.record(Phase::kKernel, 0, 1, 0, 10);    // dropped while disabled
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(Tracer, SpansCarryPhaseLaneAuxAndMonotoneTimes) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  tracer.ensure_thread();

  const SimTime begin = tracer.begin_span();
  ASSERT_GE(begin, 0);
  tracer.end_span(begin, Phase::kCopyIn, /*lane=*/3, /*aux=*/7);

  const std::vector<SpanRecord> spans = tracer.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phase, Phase::kCopyIn);
  EXPECT_EQ(spans[0].lane, 3);
  EXPECT_EQ(spans[0].aux, 7);
  EXPECT_EQ(spans[0].begin, begin);
  EXPECT_GE(spans[0].end, spans[0].begin);
}

TEST(Tracer, FullRingOverwritesOldestAndCountsDrops) {
  TracerConfig config;
  config.enabled = true;
  config.ring_capacity = 4;  // clamped up to the 64-record floor
  Tracer tracer(config);
  tracer.ensure_thread();

  constexpr int kRecords = 100;
  constexpr int kCapacity = 64;
  for (int i = 0; i < kRecords; ++i) {
    tracer.record(Phase::kKernel, 0, i, i, i + 1);
  }
  const std::vector<SpanRecord> spans = tracer.collect();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kCapacity));
  // Oldest-first: the survivors are the newest kCapacity records.
  for (int i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].aux,
              kRecords - kCapacity + i);
  }
  EXPECT_EQ(tracer.dropped(), kRecords - kCapacity);
}

TEST(Tracer, ConcurrentWritersKeepEverySpanWhenRingsAreLargeEnough) {
  TracerConfig config;
  config.enabled = true;
  config.ring_capacity = 1 << 10;
  Tracer tracer(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      tracer.ensure_thread();
      for (int i = 0; i < kPerThread; ++i) {
        const SimTime begin = tracer.begin_span();
        tracer.end_span(begin, Phase::kShard, worker_lane(t), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(tracer.collect().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(Tracer, PhaseAndLaneNames) {
  EXPECT_STREQ(phase_name(Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(phase_name(Phase::kKernel), "kernel");
  EXPECT_STREQ(phase_category(Phase::kCopyIn), "copy");
  EXPECT_STREQ(phase_category(Phase::kCopyOut), "copy");
  EXPECT_STREQ(phase_category(Phase::kKernel), "kernel");
  EXPECT_EQ(lane_name(2), "client 2");
  EXPECT_EQ(lane_name(kLaneServer), "gvm");
  EXPECT_EQ(lane_name(worker_lane(1)), "worker 1");
}

// The trace the tracer writes must survive a full round trip through the
// trace_io parser: same event count, names, categories, lanes, and
// timestamps (µs-granular in the file, so µs-aligned spans are exact).
TEST(TraceIo, ChromeTraceRoundTripsThroughParser) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  tracer.ensure_thread();
  tracer.record(Phase::kCopyIn, 0, 2, 1 * kMicrosecond, 4 * kMicrosecond);
  tracer.record(Phase::kKernel, 0, 2, 4 * kMicrosecond, 9 * kMicrosecond);
  tracer.record(Phase::kCopyOut, 0, 2, 9 * kMicrosecond, 11 * kMicrosecond);

  const auto name_fn = [](const SpanRecord& span) -> std::string {
    return span.phase == Phase::kKernel ? "kernel vecadd" : "";
  };
  TempFile file("roundtrip");
  ASSERT_TRUE(tracer.write_chrome_trace(file.path, name_fn).ok());
  ASSERT_TRUE(validate_chrome_trace(file.path).ok());

  auto loaded = load_chrome_trace(file.path);
  ASSERT_TRUE(loaded.ok());
  const gpu::Timeline reference = tracer.timeline(name_fn);
  ASSERT_EQ(loaded->size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const gpu::TraceEvent& want = reference.events()[i];
    const gpu::TraceEvent& got = loaded->events()[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.category, want.category);
    EXPECT_EQ(got.lane, want.lane);
    EXPECT_EQ(got.begin, want.begin);
    EXPECT_EQ(got.end, want.end);
  }
  EXPECT_EQ(loaded->busy_time("copy"), 5 * kMicrosecond);
  EXPECT_EQ(loaded->busy_time("kernel"), 5 * kMicrosecond);
  EXPECT_EQ(loaded->max_concurrency("kernel"), 1);
}

TEST(TraceIo, ValidatorRejectsMalformedJson) {
  TempFile file("invalid");
  std::ofstream(file.path) << "{\"not\": \"an array\"}\n";
  EXPECT_FALSE(validate_chrome_trace(file.path).ok());
  EXPECT_FALSE(validate_chrome_trace("/no/such/file.json").ok());
}

TEST(TraceIo, MergeRebasesAndPrefixesLanes) {
  gpu::Timeline a;
  a.record({"x", "kernel", "client 0", 100 * kMicrosecond,
            200 * kMicrosecond});
  gpu::Timeline b;
  b.record({"y", "copy", "client 0", 5000 * kMicrosecond,
            5500 * kMicrosecond});

  const gpu::Timeline merged = merge_timelines({a, b}, {"des", "live"});
  ASSERT_EQ(merged.size(), 2u);
  // Each input is shifted so its earliest event starts at t=0 and its
  // lanes are prefixed with the source label.
  EXPECT_EQ(merged.events()[0].begin, 0);
  EXPECT_EQ(merged.events()[0].lane, "des/client 0");
  EXPECT_EQ(merged.events()[1].begin, 0);
  EXPECT_EQ(merged.events()[1].end, 500 * kMicrosecond);
  EXPECT_EQ(merged.events()[1].lane, "live/client 0");
}

// Synthetic two-client cohort with known phase medians: the residual row
// must reproduce Eq. 4 (rounds x per-cohort prediction) and Eq. 6 exactly.
TEST(Residuals, MatchEq4AndEq6OnSyntheticSpans) {
  std::vector<SpanRecord> spans;
  const int kernel_id = 42;
  // Two clients, two rounds each: Tin=2ms, Tcomp=10ms, Tout=1ms.
  SimTime t = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::int32_t lane = 0; lane < 2; ++lane) {
      spans.push_back({t, t + milliseconds(0.5), lane, kernel_id,
                       Phase::kQueueWait});
      t += milliseconds(0.5);
      spans.push_back({t, t + milliseconds(2), lane, kernel_id,
                       Phase::kCopyIn});
      t += milliseconds(2);
      spans.push_back({t, t + milliseconds(10), lane, kernel_id,
                       Phase::kKernel});
      t += milliseconds(10);
      spans.push_back({t, t + milliseconds(1), lane, kernel_id,
                       Phase::kCopyOut});
      t += milliseconds(1);
    }
  }
  // Server-lane machinery spans must be ignored by the aggregation.
  spans.push_back({0, milliseconds(100), kLaneServer, 0,
                   Phase::kFlushBarrier});

  const auto rows = compute_residuals(
      spans, [](int id) { return "k" + std::to_string(id); });
  ASSERT_EQ(rows.size(), 1u);
  const KernelResidual& row = rows[0];
  EXPECT_EQ(row.kernel_id, kernel_id);
  EXPECT_EQ(row.kernel, "k42");
  EXPECT_EQ(row.clients, 2);
  EXPECT_EQ(row.tasks, 4);
  EXPECT_EQ(row.queue_wait_med, milliseconds(0.5));
  EXPECT_EQ(row.t_in_med, milliseconds(2));
  EXPECT_EQ(row.t_comp_med, milliseconds(10));
  EXPECT_EQ(row.t_out_med, milliseconds(1));
  EXPECT_EQ(row.measured_turnaround, t);

  // rounds = ceil(4 tasks / 2 clients) = 2; Eq. 4 per cohort:
  // N*max(Tin,Tout) + Tcomp + min(Tin,Tout) = 2*2 + 10 + 1 = 15 ms.
  const model::ExecutionProfile profile = row.profile();
  EXPECT_EQ(model::total_time_virtualized(profile, 2), milliseconds(15));
  EXPECT_EQ(row.predicted_turnaround, 2 * milliseconds(15));
  EXPECT_DOUBLE_EQ(row.smax, model::max_speedup(profile));
  const double expect_err =
      (static_cast<double>(row.measured_turnaround) -
       static_cast<double>(row.predicted_turnaround)) /
      static_cast<double>(row.predicted_turnaround);
  EXPECT_DOUBLE_EQ(row.relative_error(), expect_err);

  const std::string report = format_residuals(rows);
  EXPECT_NE(report.find("k42"), std::string::npos);
  EXPECT_NE(report.find("N=2"), std::string::npos);
}

TEST(Residuals, ZeroCopyRunsHaveNoSmaxBound) {
  // No copy spans (zero-copy data plane): Eq. 6 needs io_max > 0, so the
  // row must report smax == 0 instead of asserting inside the model.
  std::vector<SpanRecord> spans;
  spans.push_back({0, milliseconds(5), 0, 7, Phase::kKernel});
  const auto rows = compute_residuals(spans);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].t_in_med, 0);
  EXPECT_EQ(rows[0].t_out_med, 0);
  EXPECT_DOUBLE_EQ(rows[0].smax, 0.0);
  EXPECT_EQ(rows[0].kernel, "kernel 7");
  // Report renders without the Smax suffix.
  EXPECT_EQ(format_residuals(rows).find("Smax"), std::string::npos);
}

TEST(Residuals, EmptySpansYieldEmptyReport) {
  EXPECT_TRUE(compute_residuals({}).empty());
  EXPECT_NE(format_residuals({}).find("no phase spans"), std::string::npos);
}

TEST(Log, ParseLevelSpellings) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(parse_log_level("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(parse_log_level("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(parse_log_level("none", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("verbose", &level));
}

TEST(Log, SinkReceivesScopedLines) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  set_log_scope("client 7");
  VGPU_WARN("queue full, parking");
  VGPU_DEBUG("below the level, never emitted");
  set_log_scope("");
  VGPU_ERROR("bare line");
  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("[W]"), std::string::npos);
  EXPECT_NE(lines[0].find("[client 7]"), std::string::npos);
  EXPECT_NE(lines[0].find("queue full, parking"), std::string::npos);
  EXPECT_NE(lines[1].find("[E]"), std::string::npos);
  EXPECT_EQ(lines[1].find("[client 7]"), std::string::npos);
}

TEST(Log, CaptureCountsLinesPerLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  Registry registry;
  install_log_capture(registry);
  VGPU_INFO("one");
  VGPU_WARN("two");
  VGPU_WARN("three");
  VGPU_ERROR("four");
  VGPU_DEBUG("suppressed by level");
  uninstall_log_capture();
  set_log_level(saved);

  EXPECT_EQ(registry.find_counter("log.lines.info")->value(), 1);
  EXPECT_EQ(registry.find_counter("log.lines.warn")->value(), 2);
  EXPECT_EQ(registry.find_counter("log.lines.error")->value(), 1);
  EXPECT_EQ(registry.find_counter("log.lines.debug")->value(), 0);
  // After uninstall, lines no longer count.
  VGPU_WARN("uncounted");
  EXPECT_EQ(registry.find_counter("log.lines.warn")->value(), 2);
}

}  // namespace
}  // namespace vgpu::obs
