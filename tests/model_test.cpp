// Tests for the analytical model (paper Eqs. 1-6), including checks against
// the paper's own published numbers (Tables II and III).
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "model/model.hpp"

namespace vgpu::model {
namespace {

/// Paper Table II, vector addition column (values in ms).
ExecutionProfile paper_vecadd() {
  ExecutionProfile p;
  p.name = "VectorAdd(paper)";
  p.t_init = milliseconds(1519.386);
  p.t_data_in = milliseconds(135.874);
  p.t_comp = milliseconds(0.038);
  p.t_data_out = milliseconds(66.656);
  p.t_ctx_switch = milliseconds(148.226);
  return p;
}

/// Paper Table II, EP class B column.
ExecutionProfile paper_ep() {
  ExecutionProfile p;
  p.name = "EP(paper)";
  p.t_init = milliseconds(1513.555);
  p.t_data_in = 0;
  p.t_comp = milliseconds(8951.346);
  p.t_data_out = microseconds(0.055);
  p.t_ctx_switch = milliseconds(220.599);
  return p;
}

TEST(Model, Eq1SingleTaskHasNoContextSwitch) {
  ExecutionProfile p;
  p.t_init = 100;
  p.t_ctx_switch = 50;
  p.t_data_in = 10;
  p.t_comp = 20;
  p.t_data_out = 5;
  EXPECT_EQ(total_time_no_virtualization(p, 1), 100 + 35);
}

TEST(Model, Eq1GrowsLinearlyWithSwitchPerTask) {
  ExecutionProfile p;
  p.t_init = 100;
  p.t_ctx_switch = 50;
  p.t_data_in = 10;
  p.t_comp = 20;
  p.t_data_out = 5;
  const SimDuration t4 = total_time_no_virtualization(p, 4);
  const SimDuration t5 = total_time_no_virtualization(p, 5);
  EXPECT_EQ(t5 - t4, 50 + 35);  // one more task + one more switch
}

TEST(Model, Eq4UsesDominantIoDirection) {
  ExecutionProfile p;
  p.t_data_in = 30;
  p.t_data_out = 10;
  p.t_comp = 100;
  // Tin > Tout: N*Tin + Tcomp + Tout (Figure 5/6 case a).
  EXPECT_EQ(total_time_virtualized(p, 4), 4 * 30 + 100 + 10);
  std::swap(p.t_data_in, p.t_data_out);
  // Tout > Tin: N*Tout + Tcomp + Tin (case b).
  EXPECT_EQ(total_time_virtualized(p, 4), 4 * 30 + 100 + 10);
}

TEST(Model, SpeedupConvergesToEq6Limit) {
  ExecutionProfile p;
  p.t_init = 1000;
  p.t_ctx_switch = 120;
  p.t_data_in = 40;
  p.t_comp = 300;
  p.t_data_out = 25;
  const double smax = max_speedup(p);
  EXPECT_NEAR(smax, (120.0 + 40.0 + 300.0 + 25.0) / 40.0, 1e-12);
  // Eq. 5 approaches Eq. 6 from either side as N grows.
  const double s_big = speedup(p, 1'000'000);
  EXPECT_NEAR(s_big, smax, smax * 1e-3);
}

TEST(Model, SpeedupIsBoundedByEq6ForComputeHeavyProfiles) {
  // For profiles where a task cycle dominates Tinit, S(N) increases toward
  // Smax; with huge Tinit, small N can exceed Smax transiently (init
  // elimination), which Eq. 6 does not model.
  ExecutionProfile p;
  p.t_init = 10;  // negligible init
  p.t_ctx_switch = 120;
  p.t_data_in = 40;
  p.t_comp = 300;
  p.t_data_out = 25;
  const double smax = max_speedup(p);
  for (int n = 1; n <= 64; n *= 2) {
    EXPECT_LE(speedup(p, n), smax * (1.0 + 1e-9)) << "n=" << n;
  }
}

TEST(Model, PaperEpTheoreticalSpeedupTable3) {
  // Table III: EP launched with 8 processes -> theoretical speedup 8.341.
  const ExecutionProfile p = paper_ep();
  EXPECT_NEAR(speedup(p, 8), 8.341, 0.01);
}

TEST(Model, PaperEpExperimentalDeviationTable3) {
  // Table III reports deviation relative to the *experimental* speedup:
  // EP |8.341 - 7.394| / 7.394 = 12.81%; vecadd |2.721 - 2.3| / 2.3 =
  // 18.31% — both match the paper exactly under that convention.
  EXPECT_NEAR(deviation_percent(8.341, 7.394), 12.81, 0.02);
  EXPECT_NEAR(deviation_percent(2.721, 2.300), 18.306, 0.02);
}

TEST(Model, PaperVecaddTheoreticalMatchesCtxFreeVariant) {
  // The paper's printed theoretical speedup for vector addition (2.721)
  // corresponds to Eq. 5 *without* the context-switch term; Eq. 5 as
  // printed gives 3.62 with Table II's numbers. We reproduce both.
  const ExecutionProfile p = paper_vecadd();
  EXPECT_NEAR(speedup_excluding_ctx(p, 8), 2.721, 0.01);
  EXPECT_NEAR(speedup(p, 8), 3.62, 0.01);
}

TEST(Model, ClassificationMatchesPaperTable4Style) {
  ExecutionProfile io;
  io.t_data_in = 100;
  io.t_data_out = 60;
  io.t_comp = 4;
  EXPECT_EQ(classify(io), WorkloadClass::kIoIntensive);

  ExecutionProfile comp;
  comp.t_data_in = 1;
  comp.t_data_out = 1;
  comp.t_comp = 100;
  EXPECT_EQ(classify(comp), WorkloadClass::kComputeIntensive);

  ExecutionProfile mid;
  mid.t_data_in = 10;
  mid.t_data_out = 5;
  mid.t_comp = 16;
  EXPECT_EQ(classify(mid), WorkloadClass::kIntermediate);
}

TEST(Model, IoRatioInfiniteForZeroCompute) {
  ExecutionProfile p;
  p.t_data_in = 10;
  EXPECT_GT(p.io_ratio(), 1e20);
  EXPECT_EQ(classify(p), WorkloadClass::kIoIntensive);
}

TEST(Model, WorkloadClassNames) {
  EXPECT_STREQ(workload_class_name(WorkloadClass::kIoIntensive),
               "I/O-intensive");
  EXPECT_STREQ(workload_class_name(WorkloadClass::kComputeIntensive),
               "Comp-intensive");
  EXPECT_STREQ(workload_class_name(WorkloadClass::kIntermediate),
               "Intermediate");
}

}  // namespace
}  // namespace vgpu::model
