// Headline-reproduction regression tests: pin the paper-facing results so
// calibration drift is caught immediately. These duplicate (cheaply) what
// the bench binaries print, as assertions.
#include <gtest/gtest.h>

#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

namespace vgpu {
namespace {

double speedup_at8(const workloads::Workload& w) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const auto base = gvm::run_baseline(spec, w.plan, w.rounds, 8);
  const auto virt =
      gvm::run_virtualized(spec, gvm::GvmConfig{}, w.plan, w.rounds, 8);
  return static_cast<double>(base.turnaround) /
         static_cast<double>(virt.turnaround);
}

TEST(Reproduction, TableIIProfilesMatchPaper) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const auto vec = gvm::measure_profile(
      spec, workloads::vector_add().plan, 8, "VectorAdd");
  EXPECT_NEAR(to_ms(vec.t_init), 1519.4, 5.0);
  EXPECT_NEAR(to_ms(vec.t_data_in), 135.87, 1.0);
  EXPECT_NEAR(to_ms(vec.t_data_out), 66.66, 1.0);
  // Documented divergence: physically consistent value, not the paper's
  // 0.038 ms (see EXPERIMENTS.md).
  EXPECT_NEAR(to_ms(vec.t_comp), 5.2, 0.5);

  const auto ep =
      gvm::measure_profile(spec, workloads::npb_ep(30).plan, 8, "EP");
  EXPECT_NEAR(to_ms(ep.t_comp), 8951.3, 100.0);  // paper: 8951.346
  EXPECT_EQ(ep.t_data_in, 0);
}

TEST(Reproduction, Figure16BandAndOrdering) {
  // Paper: application speedups between 1.4 and 4.1 at 8 processes, with
  // the partial-GPU compute-intensive kernels (MG, CG) on top and the
  // device-filling / I/O-bound ones at the bottom.
  const double mm = speedup_at8(workloads::matmul());
  const double mg = speedup_at8(workloads::npb_mg());
  const double bs = speedup_at8(workloads::black_scholes());
  const double cg = speedup_at8(workloads::npb_cg());
  const double electro = speedup_at8(workloads::electrostatics());

  for (double s : {mm, mg, bs, cg, electro}) {
    EXPECT_GE(s, 1.3);
    EXPECT_LE(s, 5.0);
  }
  EXPECT_GT(mg, cg);       // MG leads (paper: ~4.1)
  EXPECT_GT(cg, mm);       // compute-intensive partial-GPU beat MM
  EXPECT_GT(mm, electro);  // device-filling compute
  EXPECT_GT(electro, bs);  // BlackScholes lowest (paper: ~1.4)
}

TEST(Reproduction, ClassificationsMatchTableIV) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const std::pair<workloads::Workload, model::WorkloadClass> cases[] = {
      {workloads::matmul(), model::WorkloadClass::kIntermediate},
      {workloads::npb_mg(), model::WorkloadClass::kComputeIntensive},
      {workloads::black_scholes(), model::WorkloadClass::kIoIntensive},
      {workloads::npb_cg(), model::WorkloadClass::kComputeIntensive},
      {workloads::electrostatics(), model::WorkloadClass::kComputeIntensive},
  };
  for (const auto& [w, expect] : cases) {
    const auto p = gvm::measure_profile(spec, w.plan, 8, w.name);
    EXPECT_EQ(model::classify(p), expect) << w.name;
    EXPECT_EQ(w.paper_class, expect) << w.name;
  }
}

TEST(Reproduction, Figure10OverheadUnder25Percent) {
  // 400 MB of input data through the GVM, one process: the paper's bound.
  const workloads::Workload w = workloads::vector_add(50'000'000);
  const auto r = gvm::run_virtualized(gpu::tesla_c2070(), gvm::GvmConfig{},
                                      w.plan, 1, 1);
  const double overhead =
      to_ms(r.turnaround) - to_ms(r.pure_gpu_time);
  EXPECT_LT(overhead / to_ms(r.pure_gpu_time), 0.25);
  EXPECT_GT(overhead, 0.0);
}

}  // namespace
}  // namespace vgpu
