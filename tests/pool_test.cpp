// Device-pool GVM tests: placement policies (unit), the pooled router
// (integration), cross-device migration with a bitwise-identity oracle,
// source-drain accounting, bounce-back under target pressure, and the
// pool rebalancer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "gvm/multi.hpp"
#include "gvm/pool.hpp"
#include "sched/placement.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::gvm {
namespace {

gpu::DeviceSpec fast_c2070() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(50.0);
  spec.ctx_create_time = milliseconds(5.0);
  spec.ctx_switch_time = milliseconds(20.0);
  return spec;
}

// ---------------------------------------------------------------------------
// Placement policies (pure unit tests, no simulator)
// ---------------------------------------------------------------------------

sched::DeviceLoad load(int device, int pending, int clients, Bytes free_mem) {
  sched::DeviceLoad d;
  d.device = device;
  d.pending = pending;
  d.clients = clients;
  d.free_mem = free_mem;
  d.capacity = 6 * kGiB;
  return d;
}

sched::PlacementRequest request_for(int client, Bytes bytes,
                                    int warm_device = -1) {
  sched::PlacementRequest r;
  r.client = client;
  r.bytes = bytes;
  r.warm_device = warm_device;
  return r;
}

TEST(Placement, StaticIsClientModuloDevices) {
  auto p = sched::Placement::make({sched::PlacementPolicy::kStatic});
  std::vector<sched::DeviceLoad> loads = {load(0, 9, 9, kMiB),
                                          load(1, 0, 0, 5 * kGiB),
                                          load(2, 0, 0, 5 * kGiB)};
  for (int client = 0; client < 9; ++client) {
    EXPECT_EQ(p->choose(request_for(client, 64 * kMiB), loads), client % 3);
  }
}

TEST(Placement, PackFillsTheFirstDeviceThatFits) {
  auto p = sched::Placement::make({sched::PlacementPolicy::kPack});
  std::vector<sched::DeviceLoad> loads = {load(0, 3, 3, 100 * kMiB),
                                          load(1, 0, 0, 5 * kGiB),
                                          load(2, 0, 0, 5 * kGiB)};
  // Fits on busy device 0 -> pack consolidates there anyway.
  EXPECT_EQ(p->choose(request_for(1, 50 * kMiB), loads), 0);
  // Too big for device 0 -> first device that fits.
  EXPECT_EQ(p->choose(request_for(2, 200 * kMiB), loads), 1);
}

TEST(Placement, SpreadPicksTheLeastLoadedFit) {
  auto p = sched::Placement::make({sched::PlacementPolicy::kSpread});
  std::vector<sched::DeviceLoad> loads = {load(0, 2, 2, 5 * kGiB),
                                          load(1, 1, 1, 5 * kGiB),
                                          load(2, 4, 4, 5 * kGiB)};
  EXPECT_EQ(p->choose(request_for(7, 64 * kMiB), loads), 1);
  // Pending ties break on attached clients, then device index.
  loads[0].pending = 1;
  loads[0].clients = 0;
  EXPECT_EQ(p->choose(request_for(7, 64 * kMiB), loads), 0);
}

TEST(Placement, NothingFitsFallsBackToMostFreeMemory) {
  auto p = sched::Placement::make({sched::PlacementPolicy::kSpread});
  std::vector<sched::DeviceLoad> loads = {load(0, 0, 0, 10 * kMiB),
                                          load(1, 5, 5, 40 * kMiB)};
  EXPECT_EQ(p->choose(request_for(0, 100 * kMiB), loads), 1);
}

TEST(Placement, LocalitySticksToWarmDeviceWithinStickiness) {
  sched::PlacementConfig config{sched::PlacementPolicy::kLocality};
  config.stickiness = 2.0;
  auto p = sched::Placement::make(config);
  std::vector<sched::DeviceLoad> loads = {load(0, 2, 2, 5 * kGiB),
                                          load(1, 0, 0, 5 * kGiB)};
  // Warm device 0 is 2 rounds behind the best -> still within stickiness.
  EXPECT_EQ(p->choose(request_for(3, 64 * kMiB, /*warm=*/0), loads), 0);
  // 3 rounds behind -> locality yields to load balance.
  loads[0].pending = 3;
  EXPECT_EQ(p->choose(request_for(3, 64 * kMiB, /*warm=*/0), loads), 1);
  // Cold client behaves like spread.
  EXPECT_EQ(p->choose(request_for(4, 64 * kMiB), loads), 1);
}

TEST(Placement, NamesRoundTripThroughParse) {
  sched::PlacementPolicy policy;
  for (const char* name : {"static", "pack", "spread", "locality"}) {
    ASSERT_TRUE(sched::parse_placement(name, &policy)) << name;
    EXPECT_STREQ(sched::placement_name(policy), name);
  }
  EXPECT_FALSE(sched::parse_placement("bogus", &policy));
}

// ---------------------------------------------------------------------------
// Pooled router (run_pool integration)
// ---------------------------------------------------------------------------

PoolClientSpec spec_for(const workloads::Workload& w, int sessions = 1,
                        SimDuration arrival = 0, SimDuration think = 0) {
  PoolClientSpec s;
  s.plan = w.plan;
  s.rounds = w.rounds;
  s.sessions = sessions;
  s.arrival = arrival;
  s.think = think;
  return s;
}

TEST(DevicePool, StaticPlacementMatchesTheModuloControl) {
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kStatic;
  config.model_installs = false;
  auto w = workloads::vector_add(1 << 18);
  std::vector<PoolClientSpec> clients(6, spec_for(w));
  auto r = run_pool({fast_c2070(), fast_c2070(), fast_c2070()}, config,
                    clients);
  ASSERT_EQ(r.pool.per_device_placements.size(), 3u);
  EXPECT_EQ(r.pool.per_device_placements[0], 2);  // clients 0, 3
  EXPECT_EQ(r.pool.per_device_placements[1], 2);  // clients 1, 4
  EXPECT_EQ(r.pool.per_device_placements[2], 2);  // clients 2, 5
  EXPECT_EQ(r.pool.migrations, 0);
  // Full protocol ran per client (REQ/SND/STR/STP.../RCV/RLS; STP polls
  // repeat under load, so this is a floor).
  EXPECT_GE(r.gvm.requests, 6 * 6);
}

TEST(DevicePool, SpreadBalancesStaggeredArrivals) {
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kSpread;
  config.model_installs = false;
  auto w = workloads::npb_ep(18);
  std::vector<PoolClientSpec> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(spec_for(w, 1, microseconds(50.0) * i));
  }
  auto r = run_pool(
      {fast_c2070(), fast_c2070(), fast_c2070(), fast_c2070()}, config,
      clients);
  for (long count : r.pool.per_device_placements) EXPECT_EQ(count, 2);
}

TEST(DevicePool, LocalityReusesTheWarmReplicaAcrossSessions) {
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kLocality;
  auto w = workloads::vector_add(1 << 18);
  std::vector<PoolClientSpec> clients = {
      spec_for(w, /*sessions=*/4, 0, microseconds(200.0))};
  auto r = run_pool({fast_c2070(), fast_c2070()}, config, clients);
  EXPECT_EQ(r.pool.placements, 4);
  EXPECT_EQ(r.pool.installs, 1);  // one dataset replica, reused 3 times
  EXPECT_EQ(r.pool.warm_hits, 3);
  EXPECT_EQ(r.pool.cold_moves, 0);
}

TEST(DevicePool, RunDrainsEveryDeviceAndScheduler) {
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kSpread;
  auto w = workloads::vector_add(1 << 18);
  std::vector<PoolClientSpec> clients(5, spec_for(w, 2));
  auto r = run_pool({fast_c2070(), fast_c2070()}, config, clients);
  EXPECT_EQ(r.session_seconds.size(), 10u);
  EXPECT_GT(r.p95_seconds(), 0.0);
  EXPECT_GE(r.p95_seconds(), r.mean_seconds() * 0.5);
  for (Bytes residual : r.residual_device_bytes) EXPECT_EQ(residual, 0);
  for (std::size_t clients_left : r.residual_sched_clients) {
    EXPECT_EQ(clients_left, 0u);
  }
}

// ---------------------------------------------------------------------------
// Cross-device migration
// ---------------------------------------------------------------------------

struct PoolRig {
  des::Simulator sim;
  std::vector<std::unique_ptr<gpu::Device>> devices;
  std::vector<std::unique_ptr<vcuda::Runtime>> runtimes;
  std::unique_ptr<DevicePoolGvm> pool;

  PoolRig(std::vector<gpu::DeviceSpec> specs, PoolConfig config) {
    std::vector<vcuda::Runtime*> ptrs;
    for (const auto& spec : specs) {
      devices.push_back(std::make_unique<gpu::Device>(sim, spec));
      runtimes.push_back(
          std::make_unique<vcuda::Runtime>(sim, *devices.back()));
      ptrs.push_back(runtimes.back().get());
    }
    pool = std::make_unique<DevicePoolGvm>(sim, ptrs, std::move(config));
    pool->start();
  }
};

/// Runs one functional workload through a 2-device pool, ping-ponging the
/// client between devices at every round boundary.
void run_with_migration_every_round(const std::string& name) {
  auto w = workloads::make_functional(name);
  auto reference = workloads::make_functional(name);
  // Functional kernel bodies are pure per round (input re-staged, output
  // recomputed), so extra rounds are idempotent — run at least three to
  // give the ping-pong real state to move.
  const int rounds = std::max(w.rounds, 3);

  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kPack;
  PoolRig rig({fast_c2070(), fast_c2070()}, config);
  rig.sim.spawn([](PoolRig& rig, workloads::FunctionalWorkload& w,
                   int rounds) -> des::Task<> {
    co_await rig.pool->wait_ready();
    PoolClient client(rig.sim, *rig.pool, /*id=*/0);
    EXPECT_TRUE((co_await client.req(w.plan)).ok());
    for (int round = 0; round < rounds; ++round) {
      rig.pool->direct(0, rig.pool->device_of(0) == 0 ? 1 : 0);
      co_await client.round();
    }
    co_await client.rls();
  }(rig, w, rounds));
  rig.sim.run();

  // Every round boundary executed one move.
  EXPECT_EQ(rig.pool->stats().migrations, rounds);
  EXPECT_GT(rig.pool->stats().migrated_bytes, 0);
  // Results are correct AND bitwise-identical to an unmigrated run.
  EXPECT_TRUE(w.verify()) << name << " after migration";
  RunResult baseline =
      run_virtualized(fast_c2070(), GvmConfig{}, reference.plan, rounds, 1);
  (void)baseline;
  ASSERT_TRUE(reference.verify()) << name << " reference";
  ASSERT_EQ(w.plan.bytes_out, reference.plan.bytes_out);
  EXPECT_EQ(std::memcmp(w.plan.output, reference.plan.output,
                        static_cast<std::size_t>(w.plan.bytes_out)),
            0)
      << name << ": migrated output diverges from the unmigrated run";
  // Source-side state drained: neither device still holds the client.
  EXPECT_FALSE(rig.pool->gvm(0).has_client(0));
  EXPECT_FALSE(rig.pool->gvm(1).has_client(0));
  for (auto& dev : rig.devices) EXPECT_EQ(dev->memory_used(), 0);
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_EQ(rig.pool->gvm(g).scheduler().clients(), 0u);
  }
}

class MigrationOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(MigrationOracle, BitwiseIdenticalAcrossDevices) {
  run_with_migration_every_round(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, MigrationOracle,
    ::testing::ValuesIn(workloads::functional_workload_names()),
    [](const auto& info) { return info.param; });

TEST(Migration, SourceStateDrainsToZeroMidWorkload) {
  auto w = workloads::functional_cg();
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kStatic;
  config.gvm.per_client_quota = kGiB;
  PoolRig rig({fast_c2070(), fast_c2070()}, config);
  rig.sim.spawn([](PoolRig& rig, workloads::FunctionalWorkload& w)
                    -> des::Task<> {
    co_await rig.pool->wait_ready();
    PoolClient client(rig.sim, *rig.pool, 0);
    EXPECT_TRUE((co_await client.req(w.plan)).ok());
    co_await client.round();
    const Bytes held = rig.devices[0]->memory_used();
    EXPECT_GT(held, 0);
    rig.pool->direct(0, 1);
    co_await client.round();  // checkpoint executes the move
    // Source device memory, scheduler entry and stream all drained.
    EXPECT_EQ(rig.devices[0]->memory_used(), 0);
    EXPECT_EQ(rig.pool->gvm(0).scheduler().clients(), 0u);
    EXPECT_FALSE(rig.pool->gvm(0).has_client(0));
    EXPECT_TRUE(rig.pool->gvm(1).has_client(0));
    EXPECT_EQ(rig.pool->gvm(0).scheduler().stats().migrated, 1);
    for (int round = 2; round < w.rounds; ++round) co_await client.round();
    co_await client.rls();
  }(rig, w));
  rig.sim.run();
  EXPECT_TRUE(w.verify());
  EXPECT_EQ(rig.pool->stats().migrations, 1);
  EXPECT_EQ(rig.pool->gvm(0).stats().migrations_out, 1);
  EXPECT_EQ(rig.pool->gvm(1).stats().migrations_in, 1);
}

TEST(Migration, TargetPressureBouncesTheClientBackToSource) {
  // Device 1 is too small for the client's working set: the import is
  // refused and the client bounces back to device 0, unharmed.
  gpu::DeviceSpec tiny = fast_c2070();
  tiny.global_mem = 4 * kKiB;
  auto w = workloads::functional_vecadd(2048);  // 8 KiB in, 8 KiB out
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kStatic;
  PoolRig rig({fast_c2070(), tiny}, config);
  rig.sim.spawn([](PoolRig& rig, workloads::FunctionalWorkload& w)
                    -> des::Task<> {
    co_await rig.pool->wait_ready();
    PoolClient client(rig.sim, *rig.pool, 0);
    EXPECT_TRUE((co_await client.req(w.plan)).ok());
    rig.pool->direct(0, 1);
    co_await client.round();
    EXPECT_EQ(rig.pool->device_of(0), 0);  // still home
    co_await client.rls();
  }(rig, w));
  rig.sim.run();
  EXPECT_EQ(rig.pool->stats().migrations, 0);
  EXPECT_EQ(rig.pool->stats().bounced_migrations, 1);
  EXPECT_TRUE(w.verify());
}

TEST(Migration, DirectiveToCurrentDeviceIsDropped) {
  auto w = workloads::functional_vecadd(1024);
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kStatic;
  PoolRig rig({fast_c2070(), fast_c2070()}, config);
  rig.sim.spawn([](PoolRig& rig, workloads::FunctionalWorkload& w)
                    -> des::Task<> {
    co_await rig.pool->wait_ready();
    PoolClient client(rig.sim, *rig.pool, 0);
    EXPECT_TRUE((co_await client.req(w.plan)).ok());
    rig.pool->direct(0, 0);  // no-op directive
    co_await client.round();
    co_await client.rls();
  }(rig, w));
  rig.sim.run();
  EXPECT_EQ(rig.pool->stats().migrations, 0);
  EXPECT_EQ(rig.pool->stats().failed_migrations, 1);
  EXPECT_TRUE(w.verify());
}

// ---------------------------------------------------------------------------
// Rebalancer
// ---------------------------------------------------------------------------

TEST(Rebalancer, MovesClientsOffTheOverloadedDevice) {
  // Pack piles everyone onto device 0; the rebalancer should peel
  // quiescent clients off to device 1 between sessions.
  PoolConfig config;
  config.placement.policy = sched::PlacementPolicy::kPack;
  config.model_installs = false;
  config.rebalance = true;
  config.rebalance_interval = microseconds(500.0);
  config.rebalance_min_gap = 1;
  auto w = workloads::npb_ep(18);
  PoolClientSpec spec = spec_for(w, /*sessions=*/2, 0, microseconds(100.0));
  spec.rounds = 4;  // round boundaries give the directives a place to fire
  std::vector<PoolClientSpec> clients(6, spec);
  auto r = run_pool({fast_c2070(), fast_c2070()}, config, clients);
  EXPECT_GT(r.pool.rebalance_checks, 0);
  EXPECT_GT(r.pool.migrations + r.pool.bounced_migrations +
                r.pool.failed_migrations,
            0);
  for (Bytes residual : r.residual_device_bytes) EXPECT_EQ(residual, 0);
}

}  // namespace
}  // namespace vgpu::gvm
