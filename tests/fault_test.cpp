// Unit tests for the deterministic fault-injection layer: plan parsing and
// replay determinism, the injection-point registry, the disabled-mode
// zero-cost contract, the transport decorator, and the device-model
// allocation hook.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/transport_fault.hpp"
#include "gpu/memory.hpp"
#include "obs/metrics.hpp"

namespace vgpu::fault {
namespace {

FaultPlan must_parse(const std::string& spec) {
  auto plan = FaultPlan::parse(spec);
  EXPECT_TRUE(plan.ok()) << spec << ": " << plan.status().to_string();
  return plan.ok() ? *plan : FaultPlan{};
}

/// Full decision schedule of one point for `n` occurrences.
std::vector<Action> schedule(const FaultPlan& plan, Point point, long n) {
  std::vector<Action> actions;
  for (long i = 0; i < n; ++i) actions.push_back(plan.decide(point, i).action);
  return actions;
}

TEST(FaultPlan, SameSeedYieldsIdenticalSchedule) {
  const std::string spec = "seed=42,drop@ctrl.send:p=0.3,kill@client.after_snd:p=0.1";
  const FaultPlan a = must_parse(spec);
  const FaultPlan b = must_parse(spec);
  for (const Point point : all_points()) {
    EXPECT_EQ(schedule(a, point, 500), schedule(b, point, 500))
        << point_name(point);
  }
}

TEST(FaultPlan, DifferentSeedsYieldDifferentSchedules) {
  const FaultPlan a = must_parse("seed=1,drop@ctrl.send:p=0.5");
  const FaultPlan b = must_parse("seed=2,drop@ctrl.send:p=0.5");
  EXPECT_NE(schedule(a, Point::kCtrlSend, 500),
            schedule(b, Point::kCtrlSend, 500));
}

TEST(FaultPlan, DecisionIsPureAcrossEvaluationOrder) {
  // decide(point, k) must not depend on which occurrences were evaluated
  // before it — the property that makes schedules interleaving-proof.
  const FaultPlan plan = must_parse("seed=7,delay@exec.shard:p=0.4:delay_us=3");
  const std::vector<Action> forward = schedule(plan, Point::kExecShard, 200);
  std::vector<Action> backward(200);
  for (long i = 199; i >= 0; --i) {
    backward[static_cast<std::size_t>(i)] =
        plan.decide(Point::kExecShard, i).action;
  }
  EXPECT_EQ(forward, backward);
}

TEST(FaultPlan, SpecRoundTripsThroughToString) {
  const std::string spec =
      "seed=42,kill@client.after_snd,drop@ctrl.send:p=0.5:after=2:limit=1,"
      "stall@exec.shard:delay_us=500";
  const FaultPlan plan = must_parse(spec);
  EXPECT_EQ(plan.to_string(), spec);
  // And the rendered spec parses back to the same schedule.
  const FaultPlan reparsed = must_parse(plan.to_string());
  for (const Point point : all_points()) {
    EXPECT_EQ(schedule(plan, point, 100), schedule(reparsed, point, 100));
  }
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("seed=x").ok());
  EXPECT_FALSE(FaultPlan::parse("drop").ok());
  EXPECT_FALSE(FaultPlan::parse("teleport@ctrl.send").ok());
  EXPECT_FALSE(FaultPlan::parse("none@ctrl.send").ok());
  EXPECT_FALSE(FaultPlan::parse("drop@nowhere").ok());
  EXPECT_FALSE(FaultPlan::parse("drop@ctrl.send:p=1.5").ok());
  EXPECT_FALSE(FaultPlan::parse("drop@ctrl.send:p=-0.1").ok());
  EXPECT_FALSE(FaultPlan::parse("drop@ctrl.send:volume=11").ok());
  EXPECT_FALSE(FaultPlan::parse("drop@ctrl.send,").ok());
  for (const auto& bad : {"seed=x", "drop@nowhere"}) {
    EXPECT_EQ(FaultPlan::parse(bad).status().code(),
              ErrorCode::kInvalidArgument);
  }
}

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  const FaultPlan plan = must_parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.decide(Point::kCtrlSend, 0));
}

TEST(FaultPlan, PointRegistryRoundTrips) {
  const std::vector<Point> points = all_points();
  ASSERT_EQ(points.size(), static_cast<std::size_t>(kPointCount));
  for (const Point point : points) {
    Point parsed = Point::kCount;
    EXPECT_TRUE(parse_point(point_name(point), &parsed)) << point_name(point);
    EXPECT_EQ(parsed, point);
  }
  Point out = Point::kCtrlSend;
  EXPECT_FALSE(parse_point("no.such.point", &out));
}

TEST(FaultPlan, ActionNamesRoundTrip) {
  for (int i = 0; i < kActionCount; ++i) {
    const auto action = static_cast<Action>(i);
    Action parsed = Action::kCount;
    EXPECT_TRUE(parse_action(action_name(action), &parsed));
    EXPECT_EQ(parsed, action);
  }
  Action out = Action::kNone;
  EXPECT_FALSE(parse_action("explode", &out));
}

TEST(FaultPlan, ProbabilityZeroNeverFiresAndOneAlwaysFires) {
  const FaultPlan never = must_parse("seed=3,drop@ctrl.send:p=0");
  const FaultPlan always = must_parse("seed=3,drop@ctrl.send:p=1");
  for (long i = 0; i < 200; ++i) {
    EXPECT_FALSE(never.decide(Point::kCtrlSend, i));
    EXPECT_EQ(always.decide(Point::kCtrlSend, i).action, Action::kDrop);
  }
}

TEST(FaultPlan, FractionalProbabilityFiresProportionally) {
  const FaultPlan plan = must_parse("seed=11,drop@ctrl.send:p=0.25");
  long fired = 0;
  const long n = 4000;
  for (long i = 0; i < n; ++i) {
    if (plan.decide(Point::kCtrlSend, i)) ++fired;
  }
  EXPECT_GT(fired, n / 8);      // well above zero
  EXPECT_LT(fired, n * 3 / 8);  // well below half
}

TEST(FaultPlan, AfterAndLimitBoundTheWindow) {
  const FaultPlan plan = must_parse("seed=0,kill@client.after_snd:after=2:limit=3");
  for (long i = 0; i < 10; ++i) {
    const bool inside = i >= 2 && i < 5;
    EXPECT_EQ(static_cast<bool>(plan.decide(Point::kClientAfterSnd, i)),
              inside)
        << "occurrence " << i;
  }
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  FaultPlan plan = must_parse("seed=0,delay@ctrl.send:limit=1:delay_us=7,drop@ctrl.send");
  EXPECT_EQ(plan.decide(Point::kCtrlSend, 0).action, Action::kDelay);
  EXPECT_EQ(plan.decide(Point::kCtrlSend, 0).delay.count(), 7);
  EXPECT_EQ(plan.decide(Point::kCtrlSend, 1).action, Action::kDrop);
}

TEST(FaultInjector, DisabledInjectorIsInertAndCountsNothing) {
  Injector injector;  // default: disabled
  EXPECT_FALSE(injector.enabled());
  for (const Point point : all_points()) {
    EXPECT_FALSE(injector.on(point));
    EXPECT_FALSE(injector.should_fail(point));
    injector.maybe_stall(point);
    injector.maybe_kill(point);  // must NOT raise
  }
  for (const Point point : all_points()) {
    EXPECT_EQ(injector.occurrences(point), 0) << point_name(point);
  }
  for (int a = 0; a < kActionCount; ++a) {
    EXPECT_EQ(injector.fired(static_cast<Action>(a)), 0);
  }
}

TEST(FaultInjector, EmptyPlanInjectorStaysDisabled) {
  Injector injector{FaultPlan{/*seed=*/99}};
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.on(Point::kCtrlSend));
  EXPECT_EQ(injector.occurrences(Point::kCtrlSend), 0);
}

TEST(FaultInjector, CountsOccurrencesAndFiredActions) {
  Injector injector{must_parse("seed=5,drop@ctrl.send:limit=2")};
  ASSERT_TRUE(injector.enabled());
  for (int i = 0; i < 6; ++i) (void)injector.on(Point::kCtrlSend);
  (void)injector.on(Point::kCtrlRecv);
  EXPECT_EQ(injector.occurrences(Point::kCtrlSend), 6);
  EXPECT_EQ(injector.occurrences(Point::kCtrlRecv), 1);
  EXPECT_EQ(injector.fired(Action::kDrop), 2);  // limit=2
  EXPECT_EQ(injector.fired(Action::kKill), 0);
}

TEST(FaultInjector, ShouldFailFollowsThePlanWindow) {
  Injector injector{must_parse("seed=5,fail@device.alloc:after=1:limit=1")};
  EXPECT_FALSE(injector.should_fail(Point::kDeviceAlloc));  // occurrence 0
  EXPECT_TRUE(injector.should_fail(Point::kDeviceAlloc));   // occurrence 1
  EXPECT_FALSE(injector.should_fail(Point::kDeviceAlloc));  // occurrence 2
}

TEST(FaultInjector, MaybeStallSleepsThroughTheVerdict) {
  Injector injector{must_parse("seed=5,stall@exec.shard:limit=1:delay_us=2000")};
  const auto t0 = std::chrono::steady_clock::now();
  injector.maybe_stall(Point::kExecShard);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::microseconds(2000));
  EXPECT_EQ(injector.fired(Action::kStall), 1);
}

TEST(FaultInjector, ConcurrentOccurrenceDrawsNeverLoseCounts) {
  Injector injector{must_parse("seed=5,drop@ctrl.send:p=0.5")};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) (void)injector.on(Point::kCtrlSend);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(injector.occurrences(Point::kCtrlSend), kThreads * kPerThread);
}

TEST(FaultInjector, ExportMetricsPublishesCounters) {
  Injector injector{must_parse("seed=5,drop@ctrl.send:limit=1")};
  (void)injector.on(Point::kCtrlSend);
  (void)injector.on(Point::kCtrlSend);
  obs::Registry registry;
  injector.export_metrics(registry);
  const obs::Counter* occurrences =
      registry.find_counter("fault.occurrences.ctrl.send");
  ASSERT_NE(occurrences, nullptr);
  EXPECT_EQ(occurrences->value(), 2);
  const obs::Counter* fired = registry.find_counter("fault.fired.drop");
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->value(), 1);
}

TEST(FaultInjector, MaybeKillKillsAForkedChild) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Injector injector{FaultPlan::parse("seed=0,kill@client.after_snd").value()};
    injector.maybe_kill(Point::kClientAfterSnd);
    ::_exit(0);  // unreachable when the kill fires
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(DeviceMemory, FailHookFailsAllocationsOnDemand) {
  gpu::DeviceMemoryAllocator allocator(1 * kMiB);
  Injector injector{must_parse("seed=0,fail@device.alloc:after=1:limit=1")};
  allocator.set_fail_hook(
      [&] { return injector.should_fail(Point::kDeviceAlloc); });
  EXPECT_TRUE(allocator.allocate(1024).ok());  // occurrence 0: passes
  const auto failed = allocator.allocate(1024);
  EXPECT_FALSE(failed.ok());  // occurrence 1: injected failure
  EXPECT_EQ(failed.status().code(), ErrorCode::kOutOfMemory);
  EXPECT_TRUE(allocator.allocate(1024).ok());  // occurrence 2: passes again
  EXPECT_EQ(allocator.live_allocations(), 2u);
}

/// In-memory ClientTransport so the decorator is testable without IPC.
struct FakeTransport final : ipc::ClientTransport<int, int> {
  std::vector<int> sent;
  std::deque<int> responses;

  ipc::TransportKind kind() const override {
    return ipc::TransportKind::kMessageQueue;
  }
  Status send(const int& request) override {
    sent.push_back(request);
    return Status::Ok();
  }
  StatusOr<int> receive(std::chrono::milliseconds) override {
    if (responses.empty()) return Unavailable("empty");
    const int value = responses.front();
    responses.pop_front();
    return value;
  }
};

TEST(FaultTransport, PassthroughWithoutInjector) {
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* inner = fake.get();
  FaultyClientTransport<int, int> transport(std::move(fake), nullptr);
  EXPECT_EQ(transport.kind(), ipc::TransportKind::kMessageQueue);
  ASSERT_TRUE(transport.send(7).ok());
  EXPECT_EQ(inner->sent, std::vector<int>({7}));
  inner->responses.push_back(9);
  auto got = transport.receive(std::chrono::milliseconds(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 9);
}

TEST(FaultTransport, DropSwallowsTheSend) {
  Injector injector{must_parse("seed=0,drop@ctrl.send:limit=1")};
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* inner = fake.get();
  FaultyClientTransport<int, int> transport(std::move(fake), &injector);
  ASSERT_TRUE(transport.send(1).ok());  // dropped: reported Ok, never sent
  ASSERT_TRUE(transport.send(2).ok());
  EXPECT_EQ(inner->sent, std::vector<int>({2}));
  EXPECT_EQ(injector.fired(Action::kDrop), 1);
}

TEST(FaultTransport, DuplicateSendsTwice) {
  Injector injector{must_parse("seed=0,dup@ctrl.send:limit=1")};
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* inner = fake.get();
  FaultyClientTransport<int, int> transport(std::move(fake), &injector);
  ASSERT_TRUE(transport.send(5).ok());
  EXPECT_EQ(inner->sent, std::vector<int>({5, 5}));
}

TEST(FaultTransport, RecvDropSwallowsOneResponse) {
  Injector injector{must_parse("seed=0,drop@ctrl.recv:limit=1")};
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* inner = fake.get();
  FaultyClientTransport<int, int> transport(std::move(fake), &injector);
  inner->responses = {10, 11};
  auto got = transport.receive(std::chrono::milliseconds(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 11);  // 10 was swallowed by the injected drop
}

TEST(FaultTransport, DelaySleepsThenDelivers) {
  Injector injector{must_parse("seed=0,delay@ctrl.send:limit=1:delay_us=1500")};
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* inner = fake.get();
  FaultyClientTransport<int, int> transport(std::move(fake), &injector);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(transport.send(3).ok());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(1500));
  EXPECT_EQ(inner->sent, std::vector<int>({3}));
}

}  // namespace
}  // namespace vgpu::fault
