// Property-based tests: parameterized sweeps over seeds and configurations
// checking invariants of the model, the DES engine, the device and the GVM
// rather than specific values.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "gpu/cost.hpp"
#include "gpu/device.hpp"
#include "gvm/experiment.hpp"
#include "model/model.hpp"
#include "workloads/workloads.hpp"

namespace vgpu {
namespace {

// ---------------------------------------------------------------------------
// Analytical model properties (random profiles)
// ---------------------------------------------------------------------------

class ModelProperty : public ::testing::TestWithParam<int> {};

model::ExecutionProfile random_profile(Rng& rng) {
  model::ExecutionProfile p;
  p.name = "random";
  p.t_init = milliseconds(rng.uniform(0.0, 3000.0));
  p.t_ctx_switch = milliseconds(rng.uniform(0.0, 400.0));
  p.t_data_in = milliseconds(rng.uniform(0.001, 500.0));
  p.t_comp = milliseconds(rng.uniform(0.0, 5000.0));
  p.t_data_out = milliseconds(rng.uniform(0.001, 500.0));
  return p;
}

TEST_P(ModelProperty, VirtualizedTimeNeverExceedsNative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const model::ExecutionProfile p = random_profile(rng);
    for (int n : {1, 2, 5, 8, 33, 128}) {
      EXPECT_LE(model::total_time_virtualized(p, n),
                model::total_time_no_virtualization(p, n))
          << "n=" << n;
    }
  }
}

TEST_P(ModelProperty, BothTotalsMonotoneInProcessCount) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    const model::ExecutionProfile p = random_profile(rng);
    SimDuration prev_vt = 0, prev_no = 0;
    for (int n = 1; n <= 16; ++n) {
      const SimDuration vt = model::total_time_virtualized(p, n);
      const SimDuration no = model::total_time_no_virtualization(p, n);
      EXPECT_GE(vt, prev_vt);
      EXPECT_GE(no, prev_no);
      prev_vt = vt;
      prev_no = no;
    }
  }
}

TEST_P(ModelProperty, SpeedupConvergesToMaxSpeedup) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  for (int trial = 0; trial < 20; ++trial) {
    const model::ExecutionProfile p = random_profile(rng);
    const double smax = model::max_speedup(p);
    const double s_inf = model::speedup(p, 10'000'000);
    EXPECT_NEAR(s_inf, smax, smax * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// DES determinism (random actor soups)
// ---------------------------------------------------------------------------

class DesDeterminism : public ::testing::TestWithParam<int> {};

std::pair<std::uint64_t, SimTime> run_soup(std::uint64_t seed) {
  des::Simulator sim;
  Rng rng(seed);
  auto channels = std::make_shared<std::vector<
      std::unique_ptr<des::Channel<int>>>>();
  for (int i = 0; i < 4; ++i) {
    channels->push_back(std::make_unique<des::Channel<int>>(sim));
  }
  // Producers with random schedules.
  for (int p = 0; p < 10; ++p) {
    const auto target = rng.next_below(4);
    const auto delay = static_cast<SimDuration>(rng.next_below(50));
    const int messages = 1 + static_cast<int>(rng.next_below(5));
    sim.spawn([](des::Simulator& s,
                 std::shared_ptr<std::vector<
                     std::unique_ptr<des::Channel<int>>>> chans,
                 std::size_t target, SimDuration delay,
                 int messages) -> des::Task<> {
      for (int m = 0; m < messages; ++m) {
        co_await s.delay(delay);
        (*chans)[target]->send(m);
      }
    }(sim, channels, target, delay, messages));
  }
  // Consumers drain a fixed count.
  for (int c = 0; c < 4; ++c) {
    sim.spawn([](std::shared_ptr<std::vector<
                     std::unique_ptr<des::Channel<int>>>> chans,
                 std::size_t idx) -> des::Task<> {
      for (int i = 0; i < 3; ++i) {
        (void)co_await (*chans)[idx]->receive();
      }
    }(channels, static_cast<std::size_t>(c)));
  }
  const SimTime end = sim.run();
  return {sim.events_dispatched(), end};
}

TEST_P(DesDeterminism, IdenticalRunsProduceIdenticalTraces) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto first = run_soup(seed);
  const auto second = run_soup(seed);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesDeterminism,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Occupancy and cost-model properties
// ---------------------------------------------------------------------------

class CostProperty : public ::testing::TestWithParam<int> {};

TEST_P(CostProperty, OccupancyMonotoneInResourceDemand) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  for (int trial = 0; trial < 100; ++trial) {
    gpu::KernelGeometry g;
    g.grid_blocks = 1 + static_cast<long>(rng.next_below(10000));
    g.threads_per_block = 32 * (1 + static_cast<int>(rng.next_below(32)));
    // Keep the base geometry feasible: <= 31 regs/thread fits even a
    // 1024-thread block in the 32K register file.
    g.regs_per_thread = 8 + static_cast<int>(rng.next_below(24));
    g.shmem_per_block = static_cast<Bytes>(rng.next_below(32 * 1024));
    const gpu::Occupancy base = gpu::compute_occupancy(spec, g);
    ASSERT_GE(base.blocks_per_sm, 1);
    EXPECT_LE(base.occupancy, 1.0);

    gpu::KernelGeometry heavier = g;
    heavier.regs_per_thread += 8;
    heavier.shmem_per_block += 4096;
    const gpu::Occupancy heavy = gpu::compute_occupancy(spec, heavier);
    EXPECT_LE(heavy.blocks_per_sm, base.blocks_per_sm);
  }
}

TEST_P(CostProperty, ChunkDurationRespectsDeviceThroughput) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  for (int trial = 0; trial < 100; ++trial) {
    gpu::KernelLaunch l;
    l.name = "prop";
    l.geometry = gpu::KernelGeometry{
        1 + static_cast<long>(rng.next_below(500)),
        32 * (1 + static_cast<int>(rng.next_below(8))), 20, 0};
    l.cost.flops_per_thread = rng.uniform(10.0, 1e7);
    l.cost.dram_bytes_per_thread = rng.uniform(0.0, 1e4);
    l.cost.efficiency = rng.uniform(0.01, 1.0);
    const long n = l.geometry.grid_blocks;
    const double eff = l.cost.efficiency;
    const SimDuration t =
        gpu::chunk_duration(spec, l, n, static_cast<double>(n) * eff, n);
    // Aggregate compute rate never exceeds device peak.
    const double flops = l.flops_per_block() * static_cast<double>(n);
    EXPECT_LE(flops / to_seconds(t), spec.device_flops() * 1.001);
    // Aggregate DRAM rate never exceeds effective bandwidth.
    const double bytes = l.bytes_per_block() * static_cast<double>(n);
    if (bytes > 0) {
      EXPECT_LE(bytes / to_seconds(t), spec.effective_dram_bw() * 1.001);
    }
    // More co-residents never speeds a chunk up.
    const SimDuration contended = gpu::chunk_duration(
        spec, l, n, static_cast<double>(2 * n) * eff, 2 * n);
    EXPECT_GE(contended, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostProperty, ::testing::Values(5, 6));

// ---------------------------------------------------------------------------
// GVM end-to-end invariants over random workloads
// ---------------------------------------------------------------------------

class GvmProperty : public ::testing::TestWithParam<int> {};

TEST_P(GvmProperty, VirtualizationInvariantsHoldOnRandomWorkloads) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31337);
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  for (int trial = 0; trial < 8; ++trial) {
    gvm::TaskPlan plan;
    plan.bytes_in = static_cast<Bytes>(rng.next_below(8 * 1024 * 1024));
    plan.bytes_out = static_cast<Bytes>(rng.next_below(4 * 1024 * 1024));
    const int nkernels = 1 + static_cast<int>(rng.next_below(3));
    for (int k = 0; k < nkernels; ++k) {
      gpu::KernelLaunch l;
      l.name = "rand" + std::to_string(k);
      l.geometry = gpu::KernelGeometry{
          1 + static_cast<long>(rng.next_below(2000)),
          32 * (1 + static_cast<int>(rng.next_below(8))),
          8 + static_cast<int>(rng.next_below(32)), 0};
      l.cost.flops_per_thread = rng.uniform(100.0, 1e6);
      l.cost.dram_bytes_per_thread = rng.uniform(0.0, 100.0);
      l.cost.efficiency = rng.uniform(0.05, 1.0);
      plan.kernels.push_back(l);
    }
    const int rounds = 1 + static_cast<int>(rng.next_below(3));
    const int nprocs = 1 + static_cast<int>(rng.next_below(8));

    const gvm::RunResult base =
        gvm::run_baseline(spec, plan, rounds, nprocs);
    const gvm::RunResult virt = gvm::run_virtualized(
        spec, gvm::GvmConfig{}, plan, rounds, nprocs);

    // The central claim, as an invariant.
    EXPECT_LE(virt.turnaround, base.turnaround)
        << "trial " << trial << " nprocs " << nprocs;
    // Single context: never a switch under the GVM.
    EXPECT_EQ(virt.device.ctx_switches, 0);
    // Barriered SPMD: one flush per round.
    EXPECT_EQ(virt.gvm.flushes, rounds);
    // Conservation: every kernel launched retires exactly once.
    EXPECT_EQ(virt.device.kernels_completed,
              static_cast<long>(nkernels) * rounds * nprocs);
    // All staged bytes match the plan.
    EXPECT_EQ(virt.gvm.bytes_staged_in,
              plan.bytes_in * rounds * nprocs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GvmProperty, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Device fuzz: random op storms keep internal accounting consistent
// ---------------------------------------------------------------------------

class DeviceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DeviceFuzz, RandomOpStormsLeaveDeviceConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  des::Simulator sim;
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(1.0);
  spec.ctx_create_time = milliseconds(1.0);
  spec.ctx_switch_time = milliseconds(2.0);
  gpu::Device dev(sim, spec);

  const int nprocs = 4;
  long launched_total = 0;
  des::CountdownLatch done(sim, nprocs);
  for (int p = 0; p < nprocs; ++p) {
    const std::uint64_t seed = rng.next_u64();
    sim.spawn([](des::Simulator&, gpu::Device& d, std::uint64_t seed,
                 long& launched, des::CountdownLatch& done) -> des::Task<> {
      Rng local(seed);
      const gpu::ContextId ctx = co_await d.create_context();
      std::vector<gpu::DevPtr> ptrs;
      for (int op = 0; op < 30; ++op) {
        switch (local.next_below(5)) {
          case 0: {
            auto ptr = d.malloc_device(ctx, 1 + static_cast<Bytes>(
                                                local.next_below(1 << 20)));
            if (ptr.ok()) ptrs.push_back(*ptr);
            break;
          }
          case 1: {
            if (!ptrs.empty()) {
              VGPU_ASSERT(d.free_device(ctx, ptrs.back()).ok());
              ptrs.pop_back();
            }
            break;
          }
          case 2: {
            co_await d.copy(ctx, gpu::Direction::kHostToDevice,
                            static_cast<Bytes>(local.next_below(1 << 22)),
                            local.next_below(2) == 0);
            break;
          }
          case 3: {
            co_await d.copy(ctx, gpu::Direction::kDeviceToHost,
                            static_cast<Bytes>(local.next_below(1 << 22)),
                            true);
            break;
          }
          default: {
            gpu::KernelLaunch l;
            l.name = "fuzz";
            l.geometry = gpu::KernelGeometry{
                1 + static_cast<long>(local.next_below(300)),
                32 * (1 + static_cast<int>(local.next_below(8))), 16, 0};
            l.cost.flops_per_thread = local.uniform(10.0, 1e5);
            l.cost.efficiency = local.uniform(0.05, 1.0);
            co_await d.launch_kernel(ctx, l);
            ++launched;
            break;
          }
        }
      }
      for (gpu::DevPtr ptr : ptrs) {
        VGPU_ASSERT(d.free_device(ctx, ptr).ok());
      }
      done.count_down();
      co_await done.wait();  // keep context alive until all finish
    }(sim, dev, seed, launched_total, done));
  }
  sim.run();

  EXPECT_EQ(dev.active_ops(), 0);
  EXPECT_EQ(dev.open_kernels(), 0);
  EXPECT_EQ(dev.stats().kernels_completed, launched_total);
  EXPECT_EQ(dev.memory_used(), 0);
  EXPECT_LE(dev.stats().max_active_cap,
            static_cast<double>(spec.sm_count) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz,
                         ::testing::Values(7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace vgpu
