// Parity suite for the grid-sharded kernels: every kernel in src/kernels/
// executed through a ParallelFor must match its serial oracle — bitwise
// for the kernels whose shards write disjoint outputs (and whose
// reductions keep a fixed combine order), within tight ULP bounds for the
// pairwise float reductions. Each kernel runs under:
//   * a real ExecEngine at several worker counts (including workers >
//     blocks and 1-block grids), and
//   * an adversarial serial executor that splits the grid into uneven
//     chunks and runs them in REVERSE order — shard scheduling order must
//     never leak into results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "exec/engine.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/cg.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/fft.hpp"
#include "kernels/is.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"

namespace vgpu::kernels {
namespace {

/// Uneven chunks, executed back-to-front: catches any dependence on shard
/// order or on balanced shard sizes (tail shards included by design).
ParallelFor reversed_executor(long chunk) {
  return [chunk](long total, const RangeFn& fn) {
    std::vector<std::pair<long, long>> ranges;
    for (long b = 0; b < total; b += chunk) {
      ranges.emplace_back(b, std::min(total, b + chunk));
    }
    for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
      fn(it->first, it->second);
    }
  };
}

/// Runs `check(pf)` under every executor shape the parity suite cares
/// about: engine with 1 worker, engine with 3 workers (blocks < workers
/// for small grids), and uneven reversed serial splits of 1 and 3.
template <typename Check>
void for_each_executor(const Check& check) {
  for (const int workers : {1, 3}) {
    exec::ExecConfig config;
    config.workers = workers;
    exec::ExecEngine engine(config);
    check(engine.executor());
    engine.shutdown();
  }
  check(reversed_executor(1));
  check(reversed_executor(3));
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed,
                                 double lo = -4.0, double hi = 4.0) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

TEST(ExecParity, SgemmBitwise) {
  // 33 -> 2x2 tiles with tail tiles; 32 -> a 1-tile grid; 96 -> 3x3.
  for (const int n : {32, 33, 96}) {
    const auto un = static_cast<std::size_t>(n) * n;
    const auto a = random_floats(un, 1);
    const auto b = random_floats(un, 2);
    std::vector<float> expected(un);
    sgemm(a, b, expected, n);
    for_each_executor([&](const ParallelFor& pf) {
      std::vector<float> c(un, -1.0f);
      sgemm(a, b, c, n, pf);
      ASSERT_EQ(std::memcmp(c.data(), expected.data(),
                            un * sizeof(float)),
                0)
          << "sgemm n=" << n;
    });
  }
}

TEST(ExecParity, VecaddSaxpyBitwise) {
  // 1 element: a 1-block grid; 1025: a tail block.
  for (const long n : {1L, 1024L, 1025L, 10000L}) {
    const auto un = static_cast<std::size_t>(n);
    const auto a = random_floats(un, 3);
    const auto b = random_floats(un, 4);
    std::vector<float> expected_add(un);
    vecadd(a, b, expected_add);
    std::vector<float> expected_saxpy = b;
    saxpy(2.5f, a, expected_saxpy);
    for_each_executor([&](const ParallelFor& pf) {
      std::vector<float> c(un);
      vecadd(a, b, c, pf);
      ASSERT_EQ(std::memcmp(c.data(), expected_add.data(),
                            un * sizeof(float)),
                0)
          << "vecadd n=" << n;
      std::vector<float> y = b;
      saxpy(2.5f, a, y, pf);
      ASSERT_EQ(std::memcmp(y.data(), expected_saxpy.data(),
                            un * sizeof(float)),
                0)
          << "saxpy n=" << n;
    });
  }
}

TEST(ExecParity, ReduceAndDotDeterministicAcrossPartitions) {
  // The sharded reduction fixes its combine order (per-block pairwise
  // partials merged in block order), so every partition yields the SAME
  // float — and it must sit within a tight bound of the serial oracle.
  for (const long n : {1L, 4095L, 100000L}) {
    const auto un = static_cast<std::size_t>(n);
    const auto x = random_floats(un, 5);
    const auto y = random_floats(un, 6);
    const float serial_sum = reduce_sum(x);
    const float serial_dot = dot(x, y);
    float first_sum = 0.0f;
    float first_dot = 0.0f;
    bool have_first = false;
    for_each_executor([&](const ParallelFor& pf) {
      const float s = reduce_sum(x, pf);
      const float d = dot(x, y, pf);
      if (!have_first) {
        first_sum = s;
        first_dot = d;
        have_first = true;
      } else {
        ASSERT_EQ(s, first_sum) << "reduce_sum partition-dependent, n=" << n;
        ASSERT_EQ(d, first_dot) << "dot partition-dependent, n=" << n;
      }
      ASSERT_NEAR(s, serial_sum,
                  1e-4 * std::max(1.0, std::abs(static_cast<double>(serial_sum))) +
                      1e-3 * std::sqrt(static_cast<double>(n)))
          << "reduce_sum n=" << n;
      ASSERT_NEAR(d, serial_dot,
                  1e-4 * std::max(1.0, std::abs(static_cast<double>(serial_dot))) +
                      1e-3 * std::sqrt(static_cast<double>(n)))
          << "dot n=" << n;
    });
  }
}

TEST(ExecParity, BlackScholesBitwise) {
  for (const long n : {1L, 127L, 128L, 5000L}) {
    const auto un = static_cast<std::size_t>(n);
    const auto spot = random_floats(un, 7, 10.0, 100.0);
    const auto strike = random_floats(un, 8, 10.0, 100.0);
    const auto years = random_floats(un, 9, 0.1, 5.0);
    OptionBatch batch;
    batch.stock_price = spot;
    batch.strike_price = strike;
    batch.years = years;
    std::vector<float> expected_call(un);
    std::vector<float> expected_put(un);
    black_scholes(batch, expected_call, expected_put);
    for_each_executor([&](const ParallelFor& pf) {
      std::vector<float> call(un);
      std::vector<float> put(un);
      black_scholes(batch, call, put, pf);
      ASSERT_EQ(std::memcmp(call.data(), expected_call.data(),
                            un * sizeof(float)),
                0)
          << "bs call n=" << n;
      ASSERT_EQ(std::memcmp(put.data(), expected_put.data(),
                            un * sizeof(float)),
                0)
          << "bs put n=" << n;
    });
  }
}

TEST(ExecParity, EpChunkedBitwise) {
  // 5 chunks: more chunks than a 3-worker engine's natural split; also a
  // 1-chunk grid.
  for (const int chunks : {1, 5}) {
    const EpResult expected = ep_chunked(12, chunks);
    for_each_executor([&](const ParallelFor& pf) {
      const EpResult got = ep_chunked(12, chunks, pf);
      ASSERT_EQ(got.sx, expected.sx) << "chunks=" << chunks;
      ASSERT_EQ(got.sy, expected.sy);
      ASSERT_EQ(got.q, expected.q);
      ASSERT_EQ(got.pairs_accepted, expected.pairs_accepted);
    });
  }
}

TEST(ExecParity, MgVcycleBitwise) {
  const int n = 16;
  const Grid3 v = mg_make_rhs(n);
  Grid3 expected(n);
  expected.fill(0.0);
  mg_vcycle(expected, v);
  for_each_executor([&](const ParallelFor& pf) {
    Grid3 u(n);
    u.fill(0.0);
    mg_vcycle(u, v, pf);
    ASSERT_EQ(u.data(), expected.data());
  });
}

TEST(ExecParity, CgSolveBitwise) {
  const int n = 64;
  const CsrMatrix a = cg_make_matrix(n, 6, 10.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> expected_x(b.size(), 0.0);
  const CgResult expected = cg_solve(a, b, expected_x, 15);
  for_each_executor([&](const ParallelFor& pf) {
    std::vector<double> x(b.size(), 0.0);
    const CgResult got = cg_solve(a, b, x, 15, 0.0, pf);
    ASSERT_EQ(x, expected_x);
    ASSERT_EQ(got.final_residual, expected.final_residual);
    ASSERT_EQ(got.iterations, expected.iterations);
  });
}

TEST(ExecParity, Fft3dAndEvolveBitwise) {
  const int n = 8;  // 64 lines per pass
  Field3 expected = ft_make_field(n);
  fft3d(expected, false);
  ft_evolve(expected, 2.0);
  fft3d(expected, true);
  for_each_executor([&](const ParallelFor& pf) {
    Field3 field = ft_make_field(n);
    fft3d(field, false, pf);
    ft_evolve(field, 2.0, 1e-6, pf);
    fft3d(field, true, pf);
    ASSERT_EQ(field.data(), expected.data());
  });
}

TEST(ExecParity, IsRankExact) {
  for (const long n : {1L, 4095L, 50000L}) {
    const int max_key = 512;
    const std::vector<int> keys = is_make_keys(n, max_key);
    const std::vector<long> expected = is_rank(keys, max_key);
    for_each_executor([&](const ParallelFor& pf) {
      const std::vector<long> got = is_rank(keys, max_key, pf);
      ASSERT_EQ(got, expected) << "is_rank n=" << n;
    });
    // Stable ranks applied to the keys must produce a sorted sequence.
    const std::vector<int> sorted = is_apply_ranks(keys, expected);
    ASSERT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  }
}

TEST(ExecParity, CoulombSlabBitwise) {
  const auto atoms = make_atoms(64, 16.0f);
  Lattice lat;
  lat.nx = 24;
  lat.ny = 7;  // 7 rows: blocks > 3-worker split, with a tail under 2
  std::vector<float> expected(static_cast<std::size_t>(lat.nx) * lat.ny);
  coulomb_slab(atoms, lat, expected);
  for_each_executor([&](const ParallelFor& pf) {
    std::vector<float> out(expected.size());
    coulomb_slab(atoms, lat, out, 0.05f, pf);
    ASSERT_EQ(std::memcmp(out.data(), expected.data(),
                          out.size() * sizeof(float)),
              0);
  });
}

}  // namespace
}  // namespace vgpu::kernels
