// Graph capture/replay tests (docs/graphs.md): wire-format determinism,
// validation rejects, replay parity against per-launch serial oracles for
// the elementwise kernels and the CG/MG iteration chains, launch fusion,
// multi-part uploads, and the jittered-retry determinism contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/cg.hpp"
#include "kernels/mg.hpp"
#include "rt/client.hpp"
#include "rt/graph.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

namespace vgpu::rt {
namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_graph_") + tag + "_" + std::to_string(::getpid());
}

RtServerConfig server_config(const std::string& prefix, int clients,
                             int workers,
                             ExecMode exec = ExecMode::kSerial,
                             DataPlane plane = DataPlane::kStaged) {
  RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = clients;
  config.workers = workers;
  config.exec = exec;
  config.data_plane = plane;
  return config;
}

int kernel_id(const char* name) {
  auto id = builtin_registry().id_of(name);
  VGPU_ASSERT(id.ok());
  return *id;
}

RtGraphNode kernel_node(int kid, std::int64_t n, std::int64_t src_offset,
                        std::int64_t src_bytes, std::int64_t dst_offset,
                        std::int64_t dst_bytes,
                        std::initializer_list<int> deps = {}) {
  RtGraphNode node;
  node.kind = static_cast<std::int32_t>(GraphNodeKind::kKernel);
  node.kernel_id = kid;
  node.params[0] = n;
  node.src_offset = src_offset;
  node.src_bytes = src_bytes;
  node.dst_offset = dst_offset;
  node.dst_bytes = dst_bytes;
  node.dep_count = static_cast<std::int32_t>(deps.size());
  int d = 0;
  for (int dep : deps) node.deps[d++] = dep;
  return node;
}

RtGraphNode copy_node(std::int64_t src_offset, std::int64_t dst_offset,
                      std::int64_t bytes,
                      std::initializer_list<int> deps = {}) {
  RtGraphNode node;
  node.kind = static_cast<std::int32_t>(GraphNodeKind::kCopy);
  node.src_offset = src_offset;
  node.src_bytes = bytes;
  node.dst_offset = dst_offset;
  node.dst_bytes = bytes;
  node.dep_count = static_cast<std::int32_t>(deps.size());
  int d = 0;
  for (int dep : deps) node.deps[d++] = dep;
  return node;
}

// ---------------------------------------------------------------------------
// Wire format and planning
// ---------------------------------------------------------------------------

TEST(GraphHash, DeterministicAndFieldSensitive) {
  const int vecadd = kernel_id("vecadd");
  std::vector<RtGraphNode> a = {
      kernel_node(vecadd, 64, 0, 512, 512, 256),
      copy_node(512, 0, 256, {0}),
  };
  std::vector<RtGraphNode> b = a;  // identical recording
  EXPECT_EQ(graph_hash(a), graph_hash(b));

  b[0].params[0] = 65;  // any field difference must change the hash
  EXPECT_NE(graph_hash(a), graph_hash(b));
  b = a;
  b[1].dst_offset = 8;
  EXPECT_NE(graph_hash(a), graph_hash(b));

  // Serialize/parse round trip preserves the node list and the hash.
  const std::vector<std::byte> wire = serialize_graph(a);
  auto parsed = parse_graph(wire, builtin_registry(), /*data_bytes=*/1024);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->hash, graph_hash(a));
  ASSERT_EQ(parsed->nodes.size(), a.size());
  EXPECT_EQ(0, std::memcmp(parsed->nodes.data(), a.data(),
                           a.size() * sizeof(RtGraphNode)));
}

TEST(GraphPlan, RejectsMalformedGraphs) {
  const int vecadd = kernel_id("vecadd");
  KernelRegistry& reg = builtin_registry();

  // Forward dependency (cycle or corruption).
  std::vector<RtGraphNode> forward = {copy_node(0, 64, 64, {0})};
  forward[0].deps[0] = 0;  // self-dep at index 0 is "forward"
  forward[0].dep_count = 1;
  EXPECT_FALSE(plan_graph(forward, reg, 1024).ok());

  // Span outside the data area.
  std::vector<RtGraphNode> oob = {copy_node(0, 1000, 64)};
  EXPECT_FALSE(plan_graph(oob, reg, 1024).ok());

  // offset + bytes overflowing int64 must not wrap past the bounds check
  // (the fields come off the wire; the hash is client-computed).
  std::vector<RtGraphNode> wrap = {
      copy_node(std::numeric_limits<std::int64_t>::max() - 32, 0, 64)};
  EXPECT_FALSE(plan_graph(wrap, reg, 1024).ok());
  std::vector<RtGraphNode> wrap_dst = {
      copy_node(0, std::numeric_limits<std::int64_t>::max() - 32, 64)};
  EXPECT_FALSE(plan_graph(wrap_dst, reg, 1024).ok());

  // Unknown kernel id.
  std::vector<RtGraphNode> unknown = {kernel_node(9999, 8, 0, 64, 64, 32)};
  EXPECT_FALSE(plan_graph(unknown, reg, 1024).ok());

  // Kernel whose input and output spans overlap.
  std::vector<RtGraphNode> overlap = {kernel_node(vecadd, 8, 0, 64, 32, 32)};
  EXPECT_FALSE(plan_graph(overlap, reg, 1024).ok());

  // Two unordered nodes writing the same span would race at replay.
  std::vector<RtGraphNode> race = {copy_node(0, 128, 64),
                                   copy_node(64, 128, 64)};
  EXPECT_FALSE(plan_graph(race, reg, 1024).ok());

  // The same pair, ordered by a dependency, is fine.
  std::vector<RtGraphNode> ordered = {copy_node(0, 128, 64),
                                      copy_node(64, 128, 64, {0})};
  EXPECT_TRUE(plan_graph(ordered, reg, 1024).ok());

  // Empty graphs are rejected.
  EXPECT_FALSE(plan_graph({}, reg, 1024).ok());
}

TEST(GraphPlan, LevelsAndFusionChains) {
  const int vecadd = kernel_id("vecadd");
  const long n = 256;
  const std::int64_t f = static_cast<std::int64_t>(sizeof(float));
  // tmp = A + B, final = B + tmp: a classic producer/consumer elementwise
  // chain. Node 1's input span [n, 3n) covers node 0's output [2n, 3n).
  std::vector<RtGraphNode> nodes = {
      kernel_node(vecadd, n, 0, 2 * n * f, 2 * n * f, n * f),
      kernel_node(vecadd, n, n * f, 2 * n * f, 3 * n * f, n * f, {0}),
  };
  auto graph = plan_graph(nodes, builtin_registry(), 4 * n * f);
  ASSERT_TRUE(graph.ok()) << graph.status().to_string();
  EXPECT_EQ(graph->plan.level_count, 2);
  EXPECT_EQ(graph->plan.level_of[0], 0);
  EXPECT_EQ(graph->plan.level_of[1], 1);
  EXPECT_EQ(graph->plan.fuse_next[0], 1);
  EXPECT_TRUE(graph->plan.fused_tail[1]);
  EXPECT_EQ(graph->plan.kernel_nodes, 2);

  // A second consumer of node 0 breaks the sole-consumer rule: no fusion.
  std::vector<RtGraphNode> shared = nodes;
  shared.push_back(copy_node(2 * n * f, 0, n * f, {0}));
  auto unfused = plan_graph(shared, builtin_registry(), 4 * n * f);
  ASSERT_TRUE(unfused.ok()) << unfused.status().to_string();
  EXPECT_EQ(unfused->plan.fuse_next[0], -1);

  // Ping-pong (the consumer writes back into the producer's input) must
  // not fuse: shards run out of order, so the consumer's stage on one
  // block range would clobber input bytes the producer's stage on another
  // range has not yet read. Valid graph, but replayed unfused.
  std::vector<RtGraphNode> pingpong = {
      kernel_node(vecadd, n, 0, 2 * n * f, 2 * n * f, n * f),
      kernel_node(vecadd, n, 2 * n * f, 2 * n * f, n * f, n * f, {0}),
  };
  auto pp = plan_graph(pingpong, builtin_registry(), 4 * n * f);
  ASSERT_TRUE(pp.ok()) << pp.status().to_string();
  EXPECT_EQ(pp->plan.fuse_next[0], -1);

  // The clobber guard is transitive: node 2 chains cleanly onto node 1,
  // but writes into node 0's read span, so the chain stops at node 1.
  std::vector<RtGraphNode> transitive = {
      kernel_node(vecadd, n, 0, 2 * n * f, 2 * n * f, n * f),
      kernel_node(vecadd, n, 2 * n * f, n * f, 3 * n * f, n * f, {0}),
      kernel_node(vecadd, n, 3 * n * f, n * f, n * f, n * f, {1}),
  };
  auto trans = plan_graph(transitive, builtin_registry(), 4 * n * f);
  ASSERT_TRUE(trans.ok()) << trans.status().to_string();
  EXPECT_EQ(trans->plan.fuse_next[0], 1);
  EXPECT_EQ(trans->plan.fuse_next[1], -1);
}

// ---------------------------------------------------------------------------
// Capture determinism (client API)
// ---------------------------------------------------------------------------

TEST(GraphCapture, SameSequenceHashesEqual) {
  const std::string prefix = unique_prefix("capture");
  RtServer server(server_config(prefix, 2, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    const long n = 128;
    const std::int64_t params[4] = {n, 0, 0, 0};
    std::uint64_t hashes[2] = {0, 0};
    for (int c = 0; c < 2; ++c) {
      auto client = RtClient::connect(prefix, c, 2 * n * 4, n * 4);
      ASSERT_TRUE(client.ok());
      ASSERT_TRUE(client->req(kernel_id("vecadd"), params).ok());
      // The verb mirror: SND/STR/STP/RCV record one kernel node.
      ASSERT_TRUE(client->begin_capture().ok());
      ASSERT_TRUE(client->snd().ok());
      ASSERT_TRUE(client->str().ok());
      ASSERT_TRUE(client->wait_done().ok());
      ASSERT_TRUE(client->rcv().ok());
      auto hash = client->end_capture();
      ASSERT_TRUE(hash.ok()) << hash.status().to_string();
      hashes[c] = *hash;
      EXPECT_EQ(client->captured().size(), 1u);
      ASSERT_TRUE(client->rls().ok());
    }
    EXPECT_EQ(hashes[0], hashes[1]);
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Replay parity
// ---------------------------------------------------------------------------

/// Runs `kid` once per-launch (SND/STR/STP/RCV) and once as a single-node
/// graph on a second client with identical input bytes; returns true when
/// the two output areas match bitwise.
bool single_node_parity(const std::string& prefix, const char* kernel,
                        long n, Bytes bytes_in, Bytes bytes_out) {
  const int kid = kernel_id(kernel);
  const std::int64_t params[4] = {n, 0, 0, 0};
  std::vector<std::byte> input(static_cast<std::size_t>(bytes_in));
  Rng rng(7);
  auto* f = reinterpret_cast<float*>(input.data());
  for (std::size_t i = 0; i < input.size() / 4; ++i) {
    f[i] = static_cast<float>(rng.uniform(0.1, 4.0));
  }

  auto serial = RtClient::connect(prefix, 0, bytes_in, bytes_out);
  if (!serial.ok()) return false;
  if (!serial->req(kid, params).ok()) return false;
  std::memcpy(serial->input().data(), input.data(), input.size());
  if (!serial->snd().ok() || !serial->str().ok() ||
      !serial->wait_done().ok() || !serial->rcv().ok()) {
    return false;
  }
  std::vector<std::byte> expected(serial->output().begin(),
                                  serial->output().end());
  if (!serial->rls().ok()) return false;

  auto graph = RtClient::connect(prefix, 1, bytes_in, bytes_out);
  if (!graph.ok()) return false;
  if (!graph->req(kid, params).ok()) return false;
  if (!graph->begin_capture().ok()) return false;
  if (!graph->snd().ok() || !graph->str().ok() || !graph->wait_done().ok() ||
      !graph->rcv().ok()) {
    return false;
  }
  if (!graph->end_capture().ok()) return false;
  // Upload clobbers the input area, so write the payload afterwards.
  if (!graph->upload_graph(/*graph_id=*/1).ok()) return false;
  std::memcpy(graph->input().data(), input.data(), input.size());
  if (!graph->launch_graph(1).ok()) return false;
  const bool match =
      std::memcmp(graph->output().data(), expected.data(), expected.size()) ==
      0;
  return graph->rls().ok() && match;
}

TEST(GraphReplay, ElementwiseKernelsMatchPerLaunchBitwise) {
  const std::string prefix = unique_prefix("elem");
  // Clients run one after another, so the flush barrier must be width 1.
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  const long n = 1024;
  EXPECT_TRUE(single_node_parity(prefix, "vecadd", n, 2 * n * 4, n * 4));
  EXPECT_TRUE(single_node_parity(prefix, "saxpy", n, 2 * n * 4, n * 4));
  EXPECT_TRUE(
      single_node_parity(prefix, "blackscholes", n, 3 * n * 4, 2 * n * 4));
  server.stop();
  EXPECT_EQ(server.stats().graph_replays.load(), 3);
  EXPECT_EQ(server.stats().graphs_cached.load(), 3);
  EXPECT_EQ(server.stats().graph_nodes_live.load(), 0);
  EXPECT_EQ(server.stats().graphs_reclaimed.load(), 3);
}

TEST(GraphReplay, FusedChainMatchesSerialAndCountsFusion) {
  for (const ExecMode exec : {ExecMode::kSerial, ExecMode::kSharded}) {
    const std::string prefix = unique_prefix(
        exec == ExecMode::kSerial ? "fuse_s" : "fuse_e");
    RtServer server(server_config(prefix, 1, 2, exec), builtin_registry());
    ASSERT_TRUE(server.start().ok());
    {
      const long n = 4096;
      const std::int64_t f = 4;
      const int vecadd = kernel_id("vecadd");
      const std::int64_t params[4] = {n, 0, 0, 0};
      // in: [A|B] (2n floats), out: [tmp|final]: tmp = A+B, final = B+tmp.
      auto client = RtClient::connect(prefix, 0, 2 * n * f, 2 * n * f);
      ASSERT_TRUE(client.ok());
      ASSERT_TRUE(client->req(vecadd, params).ok());
      ASSERT_TRUE(client->begin_capture().ok());
      auto head = client->capture_kernel(vecadd, params, 0, 2 * n * f,
                                         2 * n * f, n * f);
      ASSERT_TRUE(head.ok());
      const int deps[1] = {*head};
      ASSERT_TRUE(client
                      ->capture_kernel(vecadd, params, n * f, 2 * n * f,
                                       3 * n * f, n * f, deps)
                      .ok());
      ASSERT_TRUE(client->end_capture().ok());
      ASSERT_TRUE(client->upload_graph(1).ok());

      auto* in = reinterpret_cast<float*>(client->input().data());
      Rng rng(11);
      for (long i = 0; i < 2 * n; ++i) {
        in[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
      }
      ASSERT_TRUE(client->launch_graph(1).ok());
      const auto* out = reinterpret_cast<const float*>(client->output().data());
      const auto un = static_cast<std::size_t>(n);
      for (std::size_t i = 0; i < un; ++i) {
        const float tmp = in[i] + in[un + i];
        ASSERT_EQ(out[i], tmp) << "tmp lane " << i;
        ASSERT_EQ(out[un + i], in[un + i] + tmp) << "final lane " << i;
      }
      ASSERT_TRUE(client->rls().ok());
    }
    server.stop();
    // The consumer node's data pass merged into the producer's sweep.
    EXPECT_EQ(server.stats().graph_nodes_fused.load(), 1)
        << exec_mode_name(exec);
    EXPECT_EQ(server.stats().graph_nodes_run.load(), 2);
  }
}

TEST(GraphReplay, MgIterationChainMatchesPerLaunchAndBuiltin) {
  const std::string prefix = unique_prefix("mg");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    const int n = 16;
    const int iters = 4;
    const std::int64_t cells =
        static_cast<std::int64_t>(n) * n * n * 8;  // bytes per grid
    const int mg_step = kernel_id("mg_step");
    const std::int64_t params[4] = {n, 0, 0, 0};
    const kernels::Grid3 rhs = kernels::mg_make_rhs(n);

    // Per-launch oracle: K SND/STR/STP/RCV rounds, feeding u' back into
    // the u slot client-side between rounds.
    auto serial = RtClient::connect(prefix, 0, 2 * cells, cells);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(serial->req(mg_step, params).ok());
    std::memset(serial->input().data(), 0, static_cast<std::size_t>(cells));
    std::memcpy(serial->input().data() + cells, rhs.data().data(),
                static_cast<std::size_t>(cells));
    for (int it = 0; it < iters; ++it) {
      ASSERT_TRUE(serial->snd().ok());
      ASSERT_TRUE(serial->str().ok());
      ASSERT_TRUE(serial->wait_done().ok());
      ASSERT_TRUE(serial->rcv().ok());
      std::memcpy(serial->input().data(), serial->output().data(),
                  static_cast<std::size_t>(cells));
    }
    std::vector<std::byte> expected(serial->output().begin(),
                                    serial->output().end());
    ASSERT_TRUE(serial->rls().ok());

    // Graph client: K kernel nodes chained through u' -> u copy nodes,
    // fired as ONE control message.
    auto graph = RtClient::connect(prefix, 1, 2 * cells, cells);
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(graph->req(mg_step, params).ok());
    ASSERT_TRUE(graph->begin_capture().ok());
    int prev_copy = -1;
    for (int it = 0; it < iters; ++it) {
      auto k = graph->capture_kernel(
          mg_step, params, 0, 2 * cells, 2 * cells, cells,
          prev_copy >= 0 ? std::span<const int>(&prev_copy, 1)
                         : std::span<const int>());
      ASSERT_TRUE(k.ok());
      if (it + 1 < iters) {
        const int dep[1] = {*k};
        auto c = graph->capture_copy(2 * cells, 0, cells, dep);
        ASSERT_TRUE(c.ok());
        prev_copy = *c;
      }
    }
    ASSERT_TRUE(graph->end_capture().ok());
    ASSERT_TRUE(graph->upload_graph(7).ok());
    std::memset(graph->input().data(), 0, static_cast<std::size_t>(cells));
    std::memcpy(graph->input().data() + cells, rhs.data().data(),
                static_cast<std::size_t>(cells));
    ASSERT_TRUE(graph->launch_graph(7).ok());
    EXPECT_EQ(0, std::memcmp(graph->output().data(), expected.data(),
                             expected.size()));
    ASSERT_TRUE(graph->rls().ok());

    // Both equal the builtin mg_vcycle kernel iterating internally.
    std::vector<double> builtin(static_cast<std::size_t>(n) * n * n);
    {
      kernels::Grid3 u(n);
      u.fill(0.0);
      for (int it = 0; it < iters; ++it) kernels::mg_vcycle(u, rhs);
      builtin = u.data();
    }
    EXPECT_EQ(0, std::memcmp(expected.data(), builtin.data(),
                             expected.size()));
  }
  server.stop();
  EXPECT_GE(server.stats().graph_messages_saved.load(), 4 * 4 - 1);
}

TEST(GraphReplay, CgIterationChainMatchesPerLaunchAndSolver) {
  const std::string prefix = unique_prefix("cg");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    const int n = 256;
    const int nz = 6;
    const int iters = 5;
    const std::int64_t vec = static_cast<std::int64_t>(n) * 8;
    const int cg_step = kernel_id("cg_step");
    const std::int64_t params[4] = {n, nz, 0, 0};
    // b = 1 (the NPB-style all-ones right-hand side).
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);

    const auto seed_input = [&](RtClient& client) {
      auto* d = reinterpret_cast<double*>(client.input().data());
      for (int i = 0; i < n; ++i) {
        d[i] = b[static_cast<std::size_t>(i)];          // b
        d[n + i] = 0.0;                                 // x = 0
        d[2 * n + i] = b[static_cast<std::size_t>(i)];  // r = b
        d[3 * n + i] = b[static_cast<std::size_t>(i)];  // p = b
      }
    };

    // Per-launch oracle with client-side feedback copies.
    auto serial = RtClient::connect(prefix, 0, 4 * vec, 3 * vec);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(serial->req(cg_step, params).ok());
    seed_input(*serial);
    for (int it = 0; it < iters; ++it) {
      ASSERT_TRUE(serial->snd().ok());
      ASSERT_TRUE(serial->str().ok());
      ASSERT_TRUE(serial->wait_done().ok());
      ASSERT_TRUE(serial->rcv().ok());
      // x' r' p' back into the x r p slots.
      std::memcpy(serial->input().data() + vec, serial->output().data(),
                  static_cast<std::size_t>(3 * vec));
    }
    std::vector<std::byte> expected(serial->output().begin(),
                                    serial->output().end());
    ASSERT_TRUE(serial->rls().ok());

    // Graph client: kernel + three feedback copies per iteration.
    auto graph = RtClient::connect(prefix, 1, 4 * vec, 3 * vec);
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(graph->req(cg_step, params).ok());
    ASSERT_TRUE(graph->begin_capture().ok());
    std::vector<int> prev;  // the previous iteration's copy nodes
    for (int it = 0; it < iters; ++it) {
      auto k = graph->capture_kernel(
          cg_step, params, 0, 4 * vec, 4 * vec, 3 * vec,
          std::span<const int>(prev.data(), prev.size()));
      ASSERT_TRUE(k.ok()) << k.status().to_string();
      prev.clear();
      if (it + 1 < iters) {
        const int dep[1] = {*k};
        for (int slot = 0; slot < 3; ++slot) {  // x' r' p' -> x r p
          auto c = graph->capture_copy((4 + slot) * vec, (1 + slot) * vec,
                                       vec, dep);
          ASSERT_TRUE(c.ok()) << c.status().to_string();
          prev.push_back(*c);
        }
      }
    }
    ASSERT_TRUE(graph->end_capture().ok());
    ASSERT_TRUE(graph->upload_graph(3).ok());
    seed_input(*graph);
    ASSERT_TRUE(graph->launch_graph(3).ok());
    EXPECT_EQ(0, std::memcmp(graph->output().data(), expected.data(),
                             expected.size()));

    // The x' column equals cg_solve after the same iteration count.
    const kernels::CsrMatrix a = kernels::cg_make_matrix(n, nz, 10.0);
    std::vector<double> x(static_cast<std::size_t>(n));
    kernels::cg_solve(a, b, x, iters);
    EXPECT_EQ(0, std::memcmp(graph->output().data(), x.data(),
                             static_cast<std::size_t>(vec)));
    ASSERT_TRUE(graph->rls().ok());
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Upload and bookkeeping
// ---------------------------------------------------------------------------

TEST(GraphUpload, MultiPartUploadAndReplay) {
  const std::string prefix = unique_prefix("chunks");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    // A 40-copy bucket brigade whose serialized form (~24 + 40*96 bytes)
    // far outgrows the 256-byte input area: the upload must chunk.
    const Bytes bytes_in = 256;
    const Bytes bytes_out = 4096;
    const int hops = 40;
    auto client = RtClient::connect(prefix, 0, bytes_in, bytes_out);
    ASSERT_TRUE(client.ok());
    const std::int64_t params[4] = {1, 0, 0, 0};
    ASSERT_TRUE(client->req(kernel_id("sleep_ms"), params).ok());

    std::vector<RtGraphNode> nodes;
    for (int i = 0; i < hops; ++i) {
      nodes.push_back(copy_node(i * 64, (i + 1) * 64, 64,
                                i > 0 ? std::initializer_list<int>{i - 1}
                                      : std::initializer_list<int>{}));
    }
    const auto wire_bytes = serialize_graph(nodes).size();
    ASSERT_GT(wire_bytes, static_cast<std::size_t>(bytes_in));
    ASSERT_TRUE(client->upload_graph(5, nodes).ok());
    const long chunks = server.stats().graph_uploads.load();
    EXPECT_EQ(chunks, static_cast<long>(
                          (wire_bytes + bytes_in - 1) / bytes_in));
    EXPECT_EQ(server.stats().graphs_cached.load(), 1);

    std::byte pattern[64];
    for (int i = 0; i < 64; ++i) pattern[i] = static_cast<std::byte>(i * 3);
    std::memcpy(client->input().data(), pattern, sizeof(pattern));
    ASSERT_TRUE(client->launch_graph(5).ok());
    // The block marched hops slots forward; slot `hops` starts at byte
    // hops*64, which sits (hops*64 - bytes_in) into the output area.
    EXPECT_EQ(0, std::memcmp(client->output().data() + hops * 64 - bytes_in,
                             pattern, sizeof(pattern)));
    ASSERT_TRUE(client->rls().ok());
  }
  server.stop();
  EXPECT_EQ(server.stats().graph_nodes_live.load(), 0);
}

TEST(GraphUpload, RejectsGarbageAndUnknownLaunch) {
  const std::string prefix = unique_prefix("reject");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    auto client = RtClient::connect(prefix, 0, 1024, 1024);
    ASSERT_TRUE(client.ok());
    const std::int64_t params[4] = {1, 0, 0, 0};
    ASSERT_TRUE(client->req(kernel_id("sleep_ms"), params).ok());

    // Launching a graph id that was never uploaded is an error, not a hang.
    EXPECT_FALSE(client->launch_graph(42).ok());

    // A graph whose node spans exceed this session's data area is rejected
    // at upload time (validation is per-session).
    std::vector<RtGraphNode> oob = {copy_node(0, 4096, 64)};
    EXPECT_FALSE(client->upload_graph(1, oob).ok());
    ASSERT_TRUE(client->rls().ok());
  }
  server.stop();
  EXPECT_GE(server.stats().graphs_rejected.load(), 1);
  EXPECT_EQ(server.stats().graphs_cached.load(), 0);
}

// ---------------------------------------------------------------------------
// Retry backoff jitter
// ---------------------------------------------------------------------------

TEST(RtBackoff, DeterministicJitteredAndBounded) {
  RtBackoff a, b;
  a.base = std::chrono::microseconds(500);
  b.base = std::chrono::microseconds(500);
  a.seed(42);
  b.seed(42);
  std::vector<long> draws;
  long prev = 500;
  for (int i = 0; i < 32; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da, db) << "same seed must replay the same schedule";
    EXPECT_GE(da.count(), 500) << "never below base";
    EXPECT_LE(da.count(), 100'000) << "never above the cap";
    EXPECT_LE(da.count(), std::max<long>(3 * prev, 500))
        << "decorrelated growth bound";
    prev = da.count();
    draws.push_back(da.count());
  }
  // A different seed must produce a different schedule (jitter, not a
  // fixed exponential ramp).
  RtBackoff c;
  c.base = std::chrono::microseconds(500);
  c.seed(43);
  bool any_diff = false;
  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (c.next().count() != draws[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace vgpu::rt
