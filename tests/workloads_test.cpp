// Tests for the workload definitions: paper-parameter invariants, the
// functional verify() oracles (including negative controls proving they
// detect corruption), and partition helpers.
#include <gtest/gtest.h>

#include <cstring>

#include "kernels/ep.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::workloads {
namespace {

// ---------------------------------------------------------------------------
// Paper-parameter invariants
// ---------------------------------------------------------------------------

TEST(WorkloadPlans, VectorAddMatchesTableII) {
  const Workload w = vector_add();
  EXPECT_EQ(w.plan.bytes_in, 2L * 50'000'000 * 4);
  EXPECT_EQ(w.plan.bytes_out, 50'000'000L * 4);
  EXPECT_EQ(w.rounds, 1);
  ASSERT_EQ(w.plan.kernels.size(), 1u);
  EXPECT_EQ(w.paper_class, model::WorkloadClass::kIoIntensive);
}

TEST(WorkloadPlans, EpHasNoInputData) {
  const Workload w = npb_ep();
  EXPECT_EQ(w.plan.bytes_in, 0);   // paper Table II: Tdata_in = 0
  EXPECT_GT(w.plan.bytes_out, 0);  // tiny tallies come back
  EXPECT_LT(w.plan.bytes_out, 1024);
}

TEST(WorkloadPlans, IterationCountsMatchTableIV) {
  EXPECT_EQ(npb_mg().plan.kernels.size(), 4u);          // Nit = 4
  EXPECT_EQ(npb_cg().plan.kernels.size(), 15u);         // Nit = 15
  EXPECT_EQ(electrostatics().plan.kernels.size(), 25u); // Nit = 25
  EXPECT_EQ(black_scholes().rounds, 512);               // Nit = 512
}

TEST(WorkloadPlans, ApplicationBenchmarkNamesMatchPaperOrder) {
  const auto apps = application_benchmarks();
  ASSERT_EQ(apps.size(), 5u);
  EXPECT_EQ(apps[0].name, "MM");
  EXPECT_EQ(apps[1].name, "MG");
  EXPECT_EQ(apps[2].name, "BlackScholes");
  EXPECT_EQ(apps[3].name, "CG");
  EXPECT_EQ(apps[4].name, "Electrostatics");
}

TEST(WorkloadPlans, EightBaselineVecaddsFitTheC2070) {
  // 8 processes x (400 + 200) MB must fit in 6 GB — the paper ran exactly
  // this configuration natively.
  const Workload w = vector_add();
  EXPECT_LE(8 * (w.plan.bytes_in + w.plan.bytes_out),
            gpu::tesla_c2070().global_mem);
}

// ---------------------------------------------------------------------------
// Functional oracles: positive path is covered by FunctionalPath tests;
// here the negative controls — verify() must *fail* on corrupted output.
// ---------------------------------------------------------------------------

class VerifyOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(VerifyOracle, DetectsCorruptedOutput) {
  FunctionalWorkload w = make_functional(GetParam());
  // Run the functional body directly (no device) to produce good output.
  std::vector<std::byte> in_backing(
      static_cast<std::size_t>(std::max<Bytes>(w.plan.bytes_in, 1)));
  std::vector<std::byte> out_backing(
      static_cast<std::size_t>(std::max<Bytes>(w.plan.bytes_out, 1)));
  if (w.plan.input != nullptr && w.plan.bytes_in > 0) {
    std::memcpy(in_backing.data(), w.plan.input,
                static_cast<std::size_t>(w.plan.bytes_in));
  }
  vcuda::DeviceBuffer dev_in, dev_out;
  dev_in.ptr = 1;
  dev_in.size = w.plan.bytes_in;
  dev_in.backing = std::make_shared<std::vector<std::byte>>(in_backing);
  dev_out.ptr = 2;
  dev_out.size = std::max<Bytes>(w.plan.bytes_out, 1);
  dev_out.backing = std::make_shared<std::vector<std::byte>>(out_backing);
  gvm::TaskBuffers buffers{&dev_in, &dev_out};
  ASSERT_TRUE(static_cast<bool>(w.plan.kernel_body));
  w.plan.kernel_body(buffers);
  if (w.plan.output != nullptr && w.plan.bytes_out > 0) {
    std::memcpy(w.plan.output, dev_out.backing->data(),
                static_cast<std::size_t>(w.plan.bytes_out));
  }
  ASSERT_TRUE(w.verify()) << "oracle rejects a correct run";

  // Clobber the delivered output: every oracle — including the
  // tolerance-based ones (put-call parity, residual norms) — must notice.
  std::memset(w.plan.output, 0x7F,
              static_cast<std::size_t>(w.plan.bytes_out));
  EXPECT_FALSE(w.verify()) << "oracle missed corrupted output";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, VerifyOracle,
    ::testing::ValuesIn(functional_workload_names()),
    [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// EP partition helper
// ---------------------------------------------------------------------------

TEST(EpPartition, ChunkRangesTileTheWholeProblem) {
  const int m = 12;
  for (int chunks : {1, 3, 8, 16}) {
    kernels::EpResult sum;
    for (int c = 0; c < chunks; ++c) {
      const kernels::EpResult part = kernels::ep_chunk_range(m, c, chunks);
      sum.sx += part.sx;
      sum.sy += part.sy;
      sum.pairs_accepted += part.pairs_accepted;
      for (std::size_t i = 0; i < sum.q.size(); ++i) sum.q[i] += part.q[i];
    }
    const kernels::EpResult expect = kernels::ep_sequential(m);
    EXPECT_EQ(sum.q, expect.q) << "chunks=" << chunks;
    EXPECT_EQ(sum.pairs_accepted, expect.pairs_accepted);
    EXPECT_NEAR(sum.sx, expect.sx, 1e-8);
  }
}

TEST(EpPartition, ChunksAreDisjointDeterministic) {
  const kernels::EpResult a = kernels::ep_chunk_range(10, 2, 4);
  const kernels::EpResult b = kernels::ep_chunk_range(10, 2, 4);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.sx, b.sx);
}

}  // namespace
}  // namespace vgpu::workloads
