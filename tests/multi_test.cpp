// Tests for the multi-GPU virtualization extension (MultiGvm).
#include <gtest/gtest.h>

#include "gvm/multi.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::gvm {
namespace {

gpu::DeviceSpec spec() { return gpu::tesla_c2070(); }

TEST(MultiGvm, SingleGpuMatchesPlainVirtualizedRun) {
  const workloads::Workload w = workloads::vector_add(5'000'000);
  const RunResult plain =
      run_virtualized(spec(), GvmConfig{}, w.plan, w.rounds, 4);
  const RunResult multi =
      run_virtualized_multi({spec()}, GvmConfig{}, w.plan, w.rounds, 4);
  EXPECT_EQ(plain.turnaround, multi.turnaround);
}

TEST(MultiGvm, TwoGpusHalveDeviceFillingWork) {
  const workloads::Workload w = workloads::matmul(1024);
  const RunResult one =
      run_virtualized_multi({spec()}, GvmConfig{}, w.plan, w.rounds, 8);
  const RunResult two = run_virtualized_multi({spec(), spec()}, GvmConfig{},
                                              w.plan, w.rounds, 8);
  const double ratio = static_cast<double>(one.turnaround) /
                       static_cast<double>(two.turnaround);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

TEST(MultiGvm, LatencyBoundWorkGainsNothingFromMoreGpus) {
  const workloads::Workload w = workloads::npb_ep(24);
  const RunResult one =
      run_virtualized_multi({spec()}, GvmConfig{}, w.plan, w.rounds, 8);
  const RunResult two = run_virtualized_multi({spec(), spec()}, GvmConfig{},
                                              w.plan, w.rounds, 8);
  EXPECT_NEAR(static_cast<double>(two.turnaround),
              static_cast<double>(one.turnaround),
              0.02 * static_cast<double>(one.turnaround));
}

TEST(MultiGvm, OneContextPerDeviceNoSwitches) {
  const workloads::Workload w = workloads::vector_add(2'000'000);
  const RunResult r = run_virtualized_multi({spec(), spec(), spec()},
                                            GvmConfig{}, w.plan, w.rounds, 6);
  EXPECT_EQ(r.device.ctx_creates, 3);   // one GVM context per device
  EXPECT_EQ(r.device.ctx_switches, 0);
  // 6 clients x (REQ,SND,STR,STP...,RCV,RLS); STP may repeat (WAIT polls).
  EXPECT_GE(r.gvm.requests, 6 * 6);
}

TEST(MultiGvm, UnevenClientSplitStillCompletes) {
  const workloads::Workload w = workloads::vector_add(1'000'000);
  // 5 clients over 2 devices: 3 + 2.
  const RunResult r = run_virtualized_multi({spec(), spec()}, GvmConfig{},
                                            w.plan, w.rounds, 5);
  EXPECT_GT(r.turnaround, 0);
  EXPECT_EQ(r.device.kernels_completed, 5);
  EXPECT_EQ(r.gvm.bytes_staged_in, 5 * w.plan.bytes_in);
}

TEST(MultiGvm, HeterogeneousDevicesWork) {
  const workloads::Workload w = workloads::npb_ep(22);
  const RunResult r = run_virtualized_multi(
      {spec(), gpu::tesla_c1060()}, GvmConfig{}, w.plan, w.rounds, 4);
  EXPECT_EQ(r.device.kernels_completed, 4);
  // The C1060 runs EP slower; turnaround is bounded by the slower device.
  const RunResult fermi_only =
      run_virtualized_multi({spec()}, GvmConfig{}, w.plan, w.rounds, 4);
  EXPECT_GE(r.turnaround, fermi_only.turnaround);
}

}  // namespace
}  // namespace vgpu::gvm
