// Tests for the POSIX IPC substrate: shared memory, message queues, the
// SPSC ring (including a cross-thread stress test) and the process barrier.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "ipc/mqueue.hpp"
#include "ipc/process_barrier.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"

namespace vgpu::ipc {
namespace {

std::string unique_name(const char* base) {
  return std::string("/vgpu_test_") + base + "_" + std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// SharedMemory
// ---------------------------------------------------------------------------

TEST(Shm, CreateWriteOpenRead) {
  const std::string name = unique_name("shm1");
  auto creator = SharedMemory::create(name, 4096);
  ASSERT_TRUE(creator.ok()) << creator.status().to_string();
  std::strcpy(reinterpret_cast<char*>(creator->data()), "hello vgpu");

  auto opener = SharedMemory::open(name, 4096);
  ASSERT_TRUE(opener.ok()) << opener.status().to_string();
  EXPECT_STREQ(reinterpret_cast<const char*>(opener->data()), "hello vgpu");

  // Writes through the opener are visible to the creator.
  opener->data()[0] = std::byte{'H'};
  EXPECT_EQ(creator->data()[0], std::byte{'H'});
}

TEST(Shm, CreatorUnlinksOnDestruction) {
  const std::string name = unique_name("shm2");
  {
    auto creator = SharedMemory::create(name, 1024);
    ASSERT_TRUE(creator.ok());
  }
  auto opener = SharedMemory::open(name, 1024);
  EXPECT_FALSE(opener.ok());
}

TEST(Shm, OpenerDoesNotUnlink) {
  const std::string name = unique_name("shm3");
  auto creator = SharedMemory::create(name, 1024);
  ASSERT_TRUE(creator.ok());
  {
    auto opener = SharedMemory::open(name, 1024);
    ASSERT_TRUE(opener.ok());
  }
  auto opener2 = SharedMemory::open(name, 1024);
  EXPECT_TRUE(opener2.ok());
}

TEST(Shm, ZeroInitialized) {
  auto shm = SharedMemory::create(unique_name("shm4"), 8192);
  ASSERT_TRUE(shm.ok());
  for (std::byte b : shm->bytes()) EXPECT_EQ(b, std::byte{0});
}

TEST(Shm, InvalidSizeRejected) {
  auto shm = SharedMemory::create(unique_name("shm5"), 0);
  EXPECT_FALSE(shm.ok());
  EXPECT_EQ(shm.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Shm, MoveTransfersOwnership) {
  const std::string name = unique_name("shm6");
  auto a = SharedMemory::create(name, 1024);
  ASSERT_TRUE(a.ok());
  SharedMemory b = std::move(*a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a->valid());
  b.data()[0] = std::byte{42};
}

// ---------------------------------------------------------------------------
// MessageQueue
// ---------------------------------------------------------------------------

struct TestMsg {
  int type;
  int client;
  long payload;
};

TEST(Mqueue, SendReceiveRoundTrip) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq1"));
  ASSERT_TRUE(q.ok()) << q.status().to_string();
  ASSERT_TRUE(q->send({1, 7, 123456789L}).ok());
  auto msg = q->receive();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->type, 1);
  EXPECT_EQ(msg->client, 7);
  EXPECT_EQ(msg->payload, 123456789L);
}

TEST(Mqueue, FifoOrder) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq2"));
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q->send({i, 0, 0}).ok());
  for (int i = 0; i < 5; ++i) {
    auto msg = q->receive();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->type, i);
  }
}

TEST(Mqueue, TimeoutOnEmptyQueue) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq3"));
  ASSERT_TRUE(q.ok());
  const auto start = std::chrono::steady_clock::now();
  auto msg = q->receive(std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Mqueue, CrossThreadDelivery) {
  auto server = MessageQueue<TestMsg>::create(unique_name("mq4"));
  ASSERT_TRUE(server.ok());
  std::thread producer([&] {
    auto client = MessageQueue<TestMsg>::open(server->name());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(client->send({i, 0, i * 10L}).ok());
    }
  });
  for (int i = 0; i < 100; ++i) {
    auto msg = server->receive(std::chrono::milliseconds(2000));
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->type, i);
    EXPECT_EQ(msg->payload, i * 10L);
  }
  producer.join();
}

TEST(Mqueue, OpenNonexistentFails) {
  auto q = MessageQueue<TestMsg>::open(unique_name("mq_nope"));
  EXPECT_FALSE(q.ok());
}

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(Ring, PushPopBasics) {
  SpscRing<int, 8> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 7u);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(Ring, FullRejectsPush) {
  SpscRing<int, 4> ring;  // capacity 3
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_FALSE(ring.push(4));
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_TRUE(ring.push(4));
}

TEST(Ring, WrapsAround) {
  SpscRing<int, 4> ring;
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_EQ(ring.pop(), round);
  }
}

TEST(Ring, CrossThreadStress) {
  static SpscRing<long, 1024> ring;  // static: layout-stable like in shm
  constexpr long kCount = 200000;
  std::thread producer([&] {
    for (long i = 0; i < kCount; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
  });
  long expect = 0;
  while (expect < kCount) {
    auto v = ring.pop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expect);  // FIFO, no loss, no duplication
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, WorksInsideSharedMemory) {
  using Ring = SpscRing<int, 16>;
  auto shm = SharedMemory::create(unique_name("ring"), sizeof(Ring));
  ASSERT_TRUE(shm.ok());
  auto* ring = new (shm->data()) Ring();
  EXPECT_TRUE(ring->push(99));
  // A second mapping of the same region sees the element.
  auto other = SharedMemory::open(shm->name(), sizeof(Ring));
  ASSERT_TRUE(other.ok());
  auto* view = other->as<Ring>();
  EXPECT_EQ(view->pop(), 99);
  ring->~Ring();
}

// ---------------------------------------------------------------------------
// ProcessBarrier
// ---------------------------------------------------------------------------

TEST(ProcessBarrierTest, ReleasesAllThreadsTogether) {
  ProcessBarrier barrier;
  ASSERT_TRUE(barrier.init(4).ok());
  std::atomic<int> arrived{0};
  std::atomic<int> serial{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      if (barrier.wait()) serial.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arrived.load(), 4);
  EXPECT_EQ(serial.load(), 1);  // exactly one serial thread
  barrier.destroy();
}

}  // namespace
}  // namespace vgpu::ipc
