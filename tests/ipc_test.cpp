// Tests for the POSIX IPC substrate: shared memory, message queues, the
// SPSC ring (including a cross-thread stress test) and the process barrier.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "ipc/arena.hpp"
#include "ipc/control.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/process_barrier.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"

namespace vgpu::ipc {
namespace {

std::string unique_name(const char* base) {
  return std::string("/vgpu_test_") + base + "_" + std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// SharedMemory
// ---------------------------------------------------------------------------

TEST(Shm, CreateWriteOpenRead) {
  const std::string name = unique_name("shm1");
  auto creator = SharedMemory::create(name, 4096);
  ASSERT_TRUE(creator.ok()) << creator.status().to_string();
  std::strcpy(reinterpret_cast<char*>(creator->data()), "hello vgpu");

  auto opener = SharedMemory::open(name, 4096);
  ASSERT_TRUE(opener.ok()) << opener.status().to_string();
  EXPECT_STREQ(reinterpret_cast<const char*>(opener->data()), "hello vgpu");

  // Writes through the opener are visible to the creator.
  opener->data()[0] = std::byte{'H'};
  EXPECT_EQ(creator->data()[0], std::byte{'H'});
}

TEST(Shm, CreatorUnlinksOnDestruction) {
  const std::string name = unique_name("shm2");
  {
    auto creator = SharedMemory::create(name, 1024);
    ASSERT_TRUE(creator.ok());
  }
  auto opener = SharedMemory::open(name, 1024);
  EXPECT_FALSE(opener.ok());
}

TEST(Shm, OpenerDoesNotUnlink) {
  const std::string name = unique_name("shm3");
  auto creator = SharedMemory::create(name, 1024);
  ASSERT_TRUE(creator.ok());
  {
    auto opener = SharedMemory::open(name, 1024);
    ASSERT_TRUE(opener.ok());
  }
  auto opener2 = SharedMemory::open(name, 1024);
  EXPECT_TRUE(opener2.ok());
}

TEST(Shm, ZeroInitialized) {
  auto shm = SharedMemory::create(unique_name("shm4"), 8192);
  ASSERT_TRUE(shm.ok());
  for (std::byte b : shm->bytes()) EXPECT_EQ(b, std::byte{0});
}

TEST(Shm, InvalidSizeRejected) {
  auto shm = SharedMemory::create(unique_name("shm5"), 0);
  EXPECT_FALSE(shm.ok());
  EXPECT_EQ(shm.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Shm, MoveTransfersOwnership) {
  const std::string name = unique_name("shm6");
  auto a = SharedMemory::create(name, 1024);
  ASSERT_TRUE(a.ok());
  SharedMemory b = std::move(*a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a->valid());
  b.data()[0] = std::byte{42};
}

// ---------------------------------------------------------------------------
// MessageQueue
// ---------------------------------------------------------------------------

struct TestMsg {
  int type;
  int client;
  long payload;
};

TEST(Mqueue, SendReceiveRoundTrip) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq1"));
  ASSERT_TRUE(q.ok()) << q.status().to_string();
  ASSERT_TRUE(q->send({1, 7, 123456789L}).ok());
  auto msg = q->receive();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->type, 1);
  EXPECT_EQ(msg->client, 7);
  EXPECT_EQ(msg->payload, 123456789L);
}

TEST(Mqueue, FifoOrder) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq2"));
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q->send({i, 0, 0}).ok());
  for (int i = 0; i < 5; ++i) {
    auto msg = q->receive();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->type, i);
  }
}

TEST(Mqueue, TimeoutOnEmptyQueue) {
  auto q = MessageQueue<TestMsg>::create(unique_name("mq3"));
  ASSERT_TRUE(q.ok());
  const auto start = std::chrono::steady_clock::now();
  auto msg = q->receive(std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Mqueue, CrossThreadDelivery) {
  auto server = MessageQueue<TestMsg>::create(unique_name("mq4"));
  ASSERT_TRUE(server.ok());
  std::thread producer([&] {
    auto client = MessageQueue<TestMsg>::open(server->name());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(client->send({i, 0, i * 10L}).ok());
    }
  });
  for (int i = 0; i < 100; ++i) {
    auto msg = server->receive(std::chrono::milliseconds(2000));
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->type, i);
    EXPECT_EQ(msg->payload, i * 10L);
  }
  producer.join();
}

TEST(Mqueue, OpenNonexistentFails) {
  auto q = MessageQueue<TestMsg>::open(unique_name("mq_nope"));
  EXPECT_FALSE(q.ok());
}

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(Ring, PushPopBasics) {
  SpscRing<int, 8> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 7u);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(Ring, FullRejectsPush) {
  SpscRing<int, 4> ring;  // capacity 3
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_FALSE(ring.push(4));
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_TRUE(ring.push(4));
}

TEST(Ring, WrapsAround) {
  SpscRing<int, 4> ring;
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_EQ(ring.pop(), round);
  }
}

TEST(Ring, CrossThreadStress) {
  static SpscRing<long, 1024> ring;  // static: layout-stable like in shm
  constexpr long kCount = 200000;
  std::thread producer([&] {
    for (long i = 0; i < kCount; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
  });
  long expect = 0;
  while (expect < kCount) {
    auto v = ring.pop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expect);  // FIFO, no loss, no duplication
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, WorksInsideSharedMemory) {
  using Ring = SpscRing<int, 16>;
  auto shm = SharedMemory::create(unique_name("ring"), sizeof(Ring));
  ASSERT_TRUE(shm.ok());
  auto* ring = new (shm->data()) Ring();
  EXPECT_TRUE(ring->push(99));
  // A second mapping of the same region sees the element.
  auto other = SharedMemory::open(shm->name(), sizeof(Ring));
  ASSERT_TRUE(other.ok());
  auto* view = other->as<Ring>();
  EXPECT_EQ(view->pop(), 99);
  ring->~Ring();
}

// ---------------------------------------------------------------------------
// ProcessBarrier
// ---------------------------------------------------------------------------

TEST(ProcessBarrierTest, ReleasesAllThreadsTogether) {
  ProcessBarrier barrier;
  ASSERT_TRUE(barrier.init(4).ok());
  std::atomic<int> arrived{0};
  std::atomic<int> serial{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      if (barrier.wait()) serial.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arrived.load(), 4);
  EXPECT_EQ(serial.load(), 1);  // exactly one serial thread
  barrier.destroy();
}

// ---------------------------------------------------------------------------
// ControlRegion: ready set + handshake mailboxes
// ---------------------------------------------------------------------------

struct HsResp {
  int client;
  long value;
};

// The region demands 64-byte alignment (Header/Mailbox are alignas(64));
// shm mappings are page-aligned, heap new[] is not guaranteed to be.
struct ControlFixture {
  ControlFixture(const char* tag, std::uint32_t sessions,
                 std::uint32_t mailboxes) {
    auto shm = SharedMemory::create(
        unique_name(tag), ControlRegion<HsResp>::size_for(sessions, mailboxes));
    EXPECT_TRUE(shm.ok()) << shm.status().to_string();
    backing = std::move(*shm);
    region = ControlRegion<HsResp>::init(backing.data(), sessions, mailboxes);
  }
  SharedMemory backing;
  ControlRegion<HsResp> region;
};

TEST(Control, AttachValidatesPublication) {
  auto shm = SharedMemory::create(unique_name("ctrl_raw"),
                                  ControlRegion<HsResp>::size_for(4, 2));
  ASSERT_TRUE(shm.ok());
  // Zeroed shm: magic absent, attach must refuse.
  auto unpublished = ControlRegion<HsResp>::attach(shm->data(), shm->size());
  EXPECT_FALSE(unpublished.ok());

  ControlRegion<HsResp>::init(shm->data(), 4, 2);
  auto attached = ControlRegion<HsResp>::attach(shm->data(), shm->size());
  ASSERT_TRUE(attached.ok()) << attached.status().to_string();
  EXPECT_EQ(attached->sessions(), 4u);
  EXPECT_EQ(attached->mailboxes(), 2u);

  // Counts that exceed the mapping are rejected.
  auto truncated =
      ControlRegion<HsResp>::attach(shm->data(), sizeof(ControlRegion<HsResp>::Header));
  EXPECT_FALSE(truncated.ok());
}

TEST(Control, ReadySetPublishDrainRepublish) {
  ControlFixture fx("ctrl_ready", 8, 0);
  auto& ctrl = fx.region;
  EXPECT_TRUE(ctrl.ready_empty());

  EXPECT_TRUE(ctrl.publish_ready(3));
  EXPECT_TRUE(ctrl.publish_ready(5));
  EXPECT_TRUE(ctrl.publish_ready(0));
  // Duplicate publish dedups: the pending drain covers the new request.
  EXPECT_FALSE(ctrl.publish_ready(5));
  EXPECT_FALSE(ctrl.ready_empty());

  std::vector<std::uint32_t> ready;
  EXPECT_EQ(ctrl.drain_ready(&ready), 3u);
  std::sort(ready.begin(), ready.end());
  EXPECT_EQ(ready, (std::vector<std::uint32_t>{0, 3, 5}));
  EXPECT_TRUE(ctrl.ready_empty());

  // The drain cleared the queued flags: every slot publishes afresh.
  EXPECT_TRUE(ctrl.publish_ready(5));
  ready.clear();
  EXPECT_EQ(ctrl.drain_ready(&ready), 1u);
  EXPECT_EQ(ready.front(), 5u);
}

TEST(Control, ResetReadyKeepsRecycledSlotPublishable) {
  ControlFixture fx("ctrl_reset", 4, 0);
  auto& ctrl = fx.region;
  std::vector<std::uint32_t> ready;
  EXPECT_TRUE(ctrl.publish_ready(2));
  ctrl.drain_ready(&ready);
  // Slot recycling heals the flag before the new tenant attaches; a
  // clean slot must stay publishable afterwards.
  ctrl.reset_ready(2);
  EXPECT_TRUE(ctrl.publish_ready(2));
  ready.clear();
  EXPECT_EQ(ctrl.drain_ready(&ready), 1u);
  EXPECT_EQ(ready.front(), 2u);
}

TEST(Control, ReadySetConcurrentPublishersLoseNoWakeup) {
  constexpr std::uint32_t kSlots = 64;
  ControlFixture fx("ctrl_mpsc", kSlots, 0);
  auto& ctrl = fx.region;
  constexpr int kRounds = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::atomic<int>> published(kSlots);
  for (auto& p : published) p.store(0);

  std::vector<std::thread> publishers;
  for (std::uint32_t t = 0; t < 4; ++t) {
    publishers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        const std::uint32_t slot = (t * 16 + i) % kSlots;
        if (ctrl.publish_ready(slot)) published[slot].fetch_add(1);
      }
    });
  }
  std::vector<std::atomic<int>> drained(kSlots);
  for (auto& d : drained) d.store(0);
  std::thread server([&] {
    std::vector<std::uint32_t> ready;
    while (!stop.load() || !ctrl.ready_empty()) {
      ready.clear();
      ctrl.drain_ready(&ready);
      for (std::uint32_t slot : ready) drained[slot].fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (auto& p : publishers) p.join();
  stop.store(true);
  server.join();
  // Every successful publish is matched by exactly one drain: no slot is
  // lost, none duplicated.
  for (std::uint32_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(drained[s].load(), published[s].load()) << "slot " << s;
  }
}

TEST(Control, MailboxClaimDeliverCollectRelease) {
  ControlFixture fx("ctrl_mbox", 2, 3);
  auto& ctrl = fx.region;

  const std::int32_t idx = ctrl.claim_mailbox(7);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(ctrl.deliver(idx, 7, {7, 4242}));
  HsResp out{};
  EXPECT_TRUE(ctrl.try_collect(idx, 7, &out));
  EXPECT_EQ(out.client, 7);
  EXPECT_EQ(out.value, 4242L);
  ctrl.release_mailbox(idx, 7);

  // The freed box is claimable again (possibly by someone else).
  std::int32_t again = ctrl.claim_mailbox(9);
  EXPECT_GE(again, 0);
  ctrl.release_mailbox(again, 9);
}

TEST(Control, MailboxDeliveryGuards) {
  ControlFixture fx("ctrl_guard", 2, 2);
  auto& ctrl = fx.region;

  // Delivery into a free (unclaimed) box is refused.
  EXPECT_FALSE(ctrl.deliver(0, 5, {5, 1}));
  // Out-of-range indices are refused.
  EXPECT_FALSE(ctrl.deliver(-1, 5, {5, 1}));
  EXPECT_FALSE(ctrl.deliver(99, 5, {5, 1}));

  const std::int32_t idx = ctrl.claim_mailbox(5);
  ASSERT_GE(idx, 0);
  // Wrong owner: the box was recycled under the server's feet.
  EXPECT_FALSE(ctrl.deliver(idx, 6, {6, 2}));
  // Collect before any delivery: nothing there.
  HsResp out{};
  EXPECT_FALSE(ctrl.try_collect(idx, 5, &out));
  ctrl.release_mailbox(idx, 5);
}

TEST(Control, MailboxCollectRearmsOnAddresseeMismatch) {
  ControlFixture fx("ctrl_reclaim", 2, 1);
  auto& ctrl = fx.region;

  const std::int32_t idx = ctrl.claim_mailbox(5);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(ctrl.deliver(idx, 5, {5, 11}));
  // A collector that is not the addressee (the recycled-claim race) must
  // not consume the ack; the box is re-armed for another delivery.
  HsResp out{};
  EXPECT_FALSE(ctrl.try_collect(idx, 99, &out));
  EXPECT_TRUE(ctrl.deliver(idx, 5, {5, 12}));
  EXPECT_TRUE(ctrl.try_collect(idx, 5, &out));
  EXPECT_EQ(out.value, 12L);
  ctrl.release_mailbox(idx, 5);
}

TEST(Control, MailboxPoolExhaustionReturnsMinusOne) {
  ControlFixture fx("ctrl_full", 2, 2);
  auto& ctrl = fx.region;
  const std::int32_t a = ctrl.claim_mailbox(1);
  const std::int32_t b = ctrl.claim_mailbox(2);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(ctrl.claim_mailbox(3), -1);
  ctrl.release_mailbox(a, 1);
  EXPECT_GE(ctrl.claim_mailbox(3), 0);
}

// ---------------------------------------------------------------------------
// ShmArena
// ---------------------------------------------------------------------------

TEST(Arena, AllocateAlignsAndReusesFreedBlocks) {
  auto arena = ShmArena::create(unique_name("arena1"), 1 << 20,
                                /*try_hugepages=*/false);
  ASSERT_TRUE(arena.ok()) << arena.status().to_string();

  const std::int64_t a = arena->allocate(1000);
  const std::int64_t b = arena->allocate(1000);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(a % 64, 0);
  EXPECT_EQ(b % 64, 0);
  EXPECT_GE(b, a + 1000);

  // First fit: releasing the low block makes the next allocation land
  // back on it.
  arena->release(a);
  const std::int64_t c = arena->allocate(500);
  EXPECT_EQ(c, a);
}

TEST(Arena, ExhaustionBackpressuresAndReleaseRecovers) {
  auto arena = ShmArena::create(unique_name("arena2"), 4096,
                                /*try_hugepages=*/false);
  ASSERT_TRUE(arena.ok());
  const std::int64_t whole = arena->allocate(4096);
  EXPECT_EQ(whole, 0);
  EXPECT_EQ(arena->allocate(64), -1);  // nothing fits: admission backpressure
  EXPECT_EQ(arena->stats().failures, 1);
  arena->release(whole);
  EXPECT_GE(arena->allocate(64), 0);
}

TEST(Arena, StatsAndCoalescing) {
  auto arena = ShmArena::create(unique_name("arena3"), 1 << 16,
                                /*try_hugepages=*/false);
  ASSERT_TRUE(arena.ok());
  const std::int64_t a = arena->allocate(1024);
  const std::int64_t b = arena->allocate(1024);
  const std::int64_t c = arena->allocate(1024);
  ASSERT_GE(c, 0);
  EXPECT_EQ(arena->stats().allocs, 3);
  EXPECT_EQ(arena->stats().in_use, 3 * 1024);
  EXPECT_EQ(arena->stats().peak_in_use, 3 * 1024);

  // Release out of order; neighbours coalesce back into one span big
  // enough for a single allocation covering all three.
  arena->release(a);
  arena->release(c);
  arena->release(b);
  EXPECT_EQ(arena->stats().frees, 3);
  EXPECT_EQ(arena->stats().in_use, 0);
  EXPECT_EQ(arena->allocate(3 * 1024), a);

  // Double release of an already-freed offset is ignored.
  arena->release(b);
  EXPECT_EQ(arena->stats().frees, 3);
}

}  // namespace
}  // namespace vgpu::ipc
