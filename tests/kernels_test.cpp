// Unit tests for the functional kernels and their launch descriptors.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/cg.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/fft.hpp"
#include "kernels/is.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"

namespace vgpu::kernels {
namespace {

// ---------------------------------------------------------------------------
// BLAS-1
// ---------------------------------------------------------------------------

TEST(Blas1, VecAdd) {
  std::vector<float> a{1, 2, 3, 4}, b{10, 20, 30, 40}, c(4);
  vecadd(a, b, c);
  EXPECT_EQ(c, (std::vector<float>{11, 22, 33, 44}));
}

TEST(Blas1, Saxpy) {
  std::vector<float> x{1, 2, 3}, y{1, 1, 1};
  saxpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{3, 5, 7}));
}

TEST(Blas1, ReduceSumMatchesDoubleAccumulation) {
  Rng rng(11);
  std::vector<float> x(100000);
  double exact = 0.0;
  for (auto& v : x) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
    exact += v;
  }
  EXPECT_NEAR(reduce_sum(x), exact, 1e-2);
}

TEST(Blas1, DotProduct) {
  std::vector<float> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(x, y), 32.0f);
}

TEST(Blas1, VecAddLaunchMatchesPaperGrid) {
  // Paper Table II: 50M floats -> ~50K blocks of 1024 threads.
  const gpu::KernelLaunch l = vecadd_launch(50'000'000);
  EXPECT_EQ(l.geometry.threads_per_block, 1024);
  EXPECT_NEAR(static_cast<double>(l.geometry.grid_blocks), 50e3, 2e3);
  EXPECT_LT(l.intensity(), 1.0);  // I/O-bound kernel
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

TEST(Matmul, MatchesReferenceOnRandomMatrix) {
  const int n = 48;
  Rng rng(5);
  std::vector<float> a(n * n), b(n * n), c(n * n), ref(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  sgemm(a, b, c, n);
  sgemm_reference(a, b, ref, n);
  for (int i = 0; i < n * n; ++i) {
    EXPECT_NEAR(c[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)],
                1e-3);
  }
}

TEST(Matmul, IdentityIsNeutral) {
  const int n = 33;  // deliberately not a tile multiple
  std::vector<float> eye(n * n, 0.0f), b(n * n), c(n * n);
  for (int i = 0; i < n; ++i) eye[static_cast<std::size_t>(i) * n + i] = 1.0f;
  Rng rng(6);
  for (auto& v : b) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  sgemm(eye, b, c, n);
  for (int i = 0; i < n * n; ++i) {
    EXPECT_FLOAT_EQ(c[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
  }
}

TEST(Matmul, LaunchMatchesPaperGrid) {
  // Paper Table IV: 2K x 2K -> 4096 blocks (64x64 tiles of 32x32 threads).
  const gpu::KernelLaunch l = matmul_launch(2048);
  EXPECT_EQ(l.geometry.grid_blocks, 4096);
  EXPECT_EQ(l.geometry.threads_per_block, 1024);
  EXPECT_DOUBLE_EQ(l.cost.flops_per_thread, 4096.0);
}

// ---------------------------------------------------------------------------
// Black-Scholes
// ---------------------------------------------------------------------------

TEST(BlackScholes, CndBasicProperties) {
  EXPECT_NEAR(cnd(0.0f), 0.5f, 1e-5);
  EXPECT_NEAR(cnd(6.0f), 1.0f, 1e-5);
  EXPECT_NEAR(cnd(-6.0f), 0.0f, 1e-5);
  EXPECT_LT(cnd(-1.0f), cnd(1.0f));
  EXPECT_NEAR(cnd(1.0f) + cnd(-1.0f), 1.0f, 1e-5);
}

TEST(BlackScholes, PutCallParityHolds) {
  const std::size_t n = 1000;
  Rng rng(7);
  std::vector<float> s(n), x(n), t(n), call(n), put(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<float>(rng.uniform(5.0, 30.0));
    x[i] = static_cast<float>(rng.uniform(1.0, 100.0));
    t[i] = static_cast<float>(rng.uniform(0.25, 10.0));
  }
  OptionBatch batch{s, x, t, 0.02f, 0.30f};
  black_scholes(batch, call, put);
  for (std::size_t i = 0; i < n; ++i) {
    const float lhs = call[i] - put[i];
    const float rhs = s[i] - x[i] * std::exp(-batch.riskfree * t[i]);
    EXPECT_NEAR(lhs, rhs, 2e-3 * std::max(1.0f, std::fabs(rhs)));
  }
}

TEST(BlackScholes, DeepInTheMoneyCallApproachesForward) {
  std::vector<float> s{100.0f}, x{0.01f}, t{1.0f}, call(1), put(1);
  black_scholes(OptionBatch{s, x, t, 0.02f, 0.30f}, call, put);
  EXPECT_NEAR(call[0], 100.0f, 0.1f);
  EXPECT_NEAR(put[0], 0.0f, 0.01f);
}

TEST(BlackScholes, LaunchMatchesPaperGrid) {
  const gpu::KernelLaunch l = black_scholes_launch(1'000'000);
  EXPECT_EQ(l.geometry.grid_blocks, 480);  // paper Table IV
}

// ---------------------------------------------------------------------------
// NPB EP
// ---------------------------------------------------------------------------

TEST(Ep, RandomSkipMatchesSequentialDraws) {
  NpbRandom a, b;
  for (int i = 0; i < 1000; ++i) a.next();
  b.skip(1000);
  EXPECT_DOUBLE_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(Ep, RandomValuesInUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Ep, ChunkedMatchesSequential) {
  const int m = 16;  // 65536 pairs
  const EpResult seq = ep_sequential(m);
  for (int chunks : {2, 4, 7, 64}) {
    const EpResult par = ep_chunked(m, chunks);
    EXPECT_EQ(par.q, seq.q) << "chunks=" << chunks;
    EXPECT_EQ(par.pairs_accepted, seq.pairs_accepted);
    EXPECT_NEAR(par.sx, seq.sx, 1e-8 * std::fabs(seq.sx) + 1e-9);
    EXPECT_NEAR(par.sy, seq.sy, 1e-8 * std::fabs(seq.sy) + 1e-9);
  }
}

TEST(Ep, AcceptanceRateNearPiOver4) {
  const int m = 18;
  const EpResult r = ep_sequential(m);
  const double rate =
      static_cast<double>(r.pairs_accepted) / static_cast<double>(1L << m);
  EXPECT_NEAR(rate, 3.14159265 / 4.0, 0.01);
  EXPECT_EQ(r.total_counts(), r.pairs_accepted);
}

TEST(Ep, GaussianMomentsPlausible) {
  const int m = 18;
  const EpResult r = ep_sequential(m);
  // Mean of each Gaussian deviate ~ 0: |sum| << accepted count.
  EXPECT_LT(std::fabs(r.sx), 4.0 * std::sqrt(static_cast<double>(r.pairs_accepted)));
  EXPECT_LT(std::fabs(r.sy), 4.0 * std::sqrt(static_cast<double>(r.pairs_accepted)));
  // Counts decay with annulus index.
  EXPECT_GT(r.q[0], r.q[2]);
  EXPECT_GT(r.q[1], r.q[3]);
}

TEST(Ep, LaunchMatchesPaperGrid) {
  const gpu::KernelLaunch l = ep_launch(30);
  EXPECT_EQ(l.geometry.grid_blocks, 4);  // paper Table II
}

// ---------------------------------------------------------------------------
// NPB MG
// ---------------------------------------------------------------------------

TEST(Mg, OperatorAnnihilatesConstants) {
  Grid3 u(8), au(8);
  u.fill(3.5);
  apply_stencil(mg_operator_a(), u, au);
  for (double v : au.data()) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Mg, ResidualOfExactZeroRhsIsZero) {
  Grid3 u(8), v(8), r(8);
  u.fill(0.0);
  v.fill(0.0);
  mg_resid(u, v, r);
  for (double x : r.data()) EXPECT_EQ(x, 0.0);
}

TEST(Mg, RhsIsDeterministicAndBalanced) {
  const Grid3 v1 = mg_make_rhs(16, 10, 42);
  const Grid3 v2 = mg_make_rhs(16, 10, 42);
  EXPECT_EQ(v1.data(), v2.data());
  double sum = 0.0;
  long nonzero = 0;
  for (double x : v1.data()) {
    sum += x;
    if (x != 0.0) ++nonzero;
  }
  EXPECT_LE(std::fabs(sum), 10.0);
  EXPECT_GE(nonzero, 10);
  EXPECT_LE(nonzero, 20);
}

TEST(Mg, VcycleReducesResidual) {
  const int n = 16;
  const Grid3 v = mg_make_rhs(n);
  Grid3 u(n);
  u.fill(0.0);
  double prev = mg_residual_norm(u, v);
  ASSERT_GT(prev, 0.0);
  for (int it = 0; it < 4; ++it) {
    mg_vcycle(u, v);
    const double cur = mg_residual_norm(u, v);
    EXPECT_LT(cur, prev * 0.9) << "iteration " << it;
    prev = cur;
  }
}

TEST(Mg, RestrictionPreservesConstants) {
  Grid3 fine(16), coarse(8);
  fine.fill(1.0);
  mg_rprj3(fine, coarse);
  // NPB full-weighting has total weight 4 (not normalized to 1).
  for (double v : coarse.data()) EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(Mg, InterpolationOfConstantAddsConstant) {
  Grid3 coarse(4), fine(8);
  coarse.fill(2.0);
  fine.fill(1.0);
  mg_interp(coarse, fine);
  for (double v : fine.data()) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Mg, LaunchMatchesPaperGrid) {
  const gpu::KernelLaunch l = mg_launch(32);
  EXPECT_EQ(l.geometry.grid_blocks, 64);  // paper Table IV
}

// ---------------------------------------------------------------------------
// NPB CG
// ---------------------------------------------------------------------------

TEST(Cg, MatrixIsSymmetricWithDominantDiagonal) {
  const CsrMatrix a = cg_make_matrix(100, 6, 10.0);
  // Dense mirror for symmetry check.
  std::vector<double> dense(100 * 100, 0.0);
  for (int i = 0; i < a.n; ++i) {
    for (int e = a.row_ptr[static_cast<std::size_t>(i)];
         e < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
      dense[static_cast<std::size_t>(i) * 100 +
            static_cast<std::size_t>(a.col[static_cast<std::size_t>(e)])] =
          a.val[static_cast<std::size_t>(e)];
    }
  }
  for (int i = 0; i < 100; ++i) {
    double off = 0.0;
    for (int j = 0; j < 100; ++j) {
      EXPECT_DOUBLE_EQ(dense[static_cast<std::size_t>(i) * 100 + j],
                       dense[static_cast<std::size_t>(j) * 100 + i]);
      if (i != j) off += std::fabs(dense[static_cast<std::size_t>(i) * 100 + j]);
    }
    EXPECT_GT(dense[static_cast<std::size_t>(i) * 100 + i], off);  // SPD
  }
}

TEST(Cg, SolvesDiagonalSystemInOneIteration) {
  CsrMatrix a;
  a.n = 4;
  a.row_ptr = {0, 1, 2, 3, 4};
  a.col = {0, 1, 2, 3};
  a.val = {2.0, 2.0, 2.0, 2.0};
  std::vector<double> b{2, 4, 6, 8}, x(4);
  const CgResult r = cg_solve(a, b, x, 10, 1e-12);
  EXPECT_LE(r.iterations, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], (i + 1.0), 1e-10);
  }
}

TEST(Cg, ConvergesOnRandomSpdSystem) {
  const int n = 300;
  const CsrMatrix a = cg_make_matrix(n, 8, 5.0);
  Rng rng(3);
  std::vector<double> b(n), x(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const CgResult r = cg_solve(a, b, x, 60, 1e-10);
  EXPECT_LT(r.final_residual, 1e-8);
  // Residual history is monotone within round-off-dominated CG behaviour.
  EXPECT_LT(r.residual_history.back(), r.residual_history.front() * 1e-6);
  // Verify the solution directly: ||b - A x||.
  std::vector<double> ax(n);
  spmv(a, x, ax);
  double err = 0.0;
  for (int i = 0; i < n; ++i) {
    err += (b[static_cast<std::size_t>(i)] - ax[static_cast<std::size_t>(i)]) *
           (b[static_cast<std::size_t>(i)] - ax[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(std::sqrt(err), 1e-8);
}

TEST(Cg, LaunchMatchesPaperGrid) {
  const gpu::KernelLaunch l = cg_launch(1400, 7);
  EXPECT_EQ(l.geometry.grid_blocks, 8);  // paper Table IV
}

// ---------------------------------------------------------------------------
// Electrostatics
// ---------------------------------------------------------------------------

TEST(Electrostatics, SingleAtomPotentialAtSource) {
  const std::vector<Atom> atoms{{0.0f, 0.0f, 0.0f, 2.0f}};
  Lattice lat{4, 4, 0.5f, 0.0f};
  std::vector<float> out(16);
  coulomb_slab(atoms, lat, out, 0.05f);
  // At the atom position: q / softening.
  EXPECT_NEAR(out[0], 2.0f / 0.05f, 1e-3f);
  // Distance-1 grid points (2 steps of 0.5): q / ~1.
  EXPECT_NEAR(out[2], 2.0f / std::sqrt(1.0f + 0.0025f), 1e-3f);
}

TEST(Electrostatics, SuperpositionHolds) {
  const std::vector<Atom> a{{1.0f, 1.0f, 0.5f, 1.5f}};
  const std::vector<Atom> b{{2.0f, 0.5f, -0.5f, -0.7f}};
  std::vector<Atom> both = a;
  both.insert(both.end(), b.begin(), b.end());
  Lattice lat{8, 8, 0.5f, 0.0f};
  std::vector<float> fa(64), fb(64), fab(64);
  coulomb_slab(a, lat, fa);
  coulomb_slab(b, lat, fb);
  coulomb_slab(both, lat, fab);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(fab[i], fa[i] + fb[i], 1e-4f);
  }
}

TEST(Electrostatics, MakeAtomsDeterministicAndInBox) {
  const auto atoms = make_atoms(1000, 10.0f, 99);
  const auto again = make_atoms(1000, 10.0f, 99);
  ASSERT_EQ(atoms.size(), 1000u);
  EXPECT_EQ(atoms[17].x, again[17].x);
  for (const Atom& a : atoms) {
    EXPECT_GE(a.x, 0.0f);
    EXPECT_LT(a.x, 10.0f);
    EXPECT_GE(a.q, -1.0f);
    EXPECT_LE(a.q, 1.0f);
  }
}

TEST(Electrostatics, LaunchMatchesPaperGrid) {
  const gpu::KernelLaunch l = electrostatics_launch(100'000, 36864);
  EXPECT_EQ(l.geometry.grid_blocks, 288);  // paper Table IV
}


// ---------------------------------------------------------------------------
// NPB FT (extension)
// ---------------------------------------------------------------------------

TEST(Ft, Fft1dRoundTrip) {
  Rng rng(21);
  std::vector<Complex> data(64), original;
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  original = data;
  fft1d(data, false);
  fft1d(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-12);
  }
}

TEST(Ft, Fft1dOfImpulseIsFlat) {
  std::vector<Complex> data(16, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft1d(data, false);
  for (const Complex& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Ft, Fft1dParseval) {
  Rng rng(22);
  std::vector<Complex> data(128);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(c);
  }
  fft1d(data, false);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8 * freq_energy);
}

TEST(Ft, Fft3dRoundTrip) {
  Field3 field = ft_make_field(8);
  const std::vector<Complex> original = field.data();
  fft3d(field, false);
  fft3d(field, true);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(std::abs(field.data()[i] - original[i]), 0.0, 1e-10);
  }
}

TEST(Ft, EvolveDecaysHighModesMore) {
  Field3 field(8);
  field.at(1, 0, 0) = Complex(1, 0);  // low mode
  field.at(3, 3, 3) = Complex(1, 0);  // high mode
  ft_evolve(field, /*t=*/1000.0);
  EXPECT_GT(std::abs(field.at(1, 0, 0)), std::abs(field.at(3, 3, 3)));
  EXPECT_LT(std::abs(field.at(1, 0, 0)), 1.0);
}

TEST(Ft, ChecksumDeterministic) {
  const Field3 a = ft_make_field(8, 5);
  const Field3 b = ft_make_field(8, 5);
  EXPECT_EQ(ft_checksum(a), ft_checksum(b));
  const Field3 c = ft_make_field(8, 6);
  EXPECT_NE(ft_checksum(a), ft_checksum(c));
}

// ---------------------------------------------------------------------------
// NPB IS (extension)
// ---------------------------------------------------------------------------

TEST(Is, RanksProduceSortedPermutation) {
  const auto keys = is_make_keys(10000, 1 << 11);
  const auto ranks = is_rank(keys, 1 << 11);
  const auto sorted = is_apply_ranks(keys, ranks);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // Permutation: same multiset as a reference sort.
  std::vector<int> expect(keys.begin(), keys.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(Is, RanksAreStableForEqualKeys) {
  const std::vector<int> keys{3, 1, 3, 1, 3};
  const auto ranks = is_rank(keys, 4);
  // Equal keys keep input order: the first 1 ranks before the second.
  EXPECT_LT(ranks[1], ranks[3]);
  EXPECT_LT(ranks[0], ranks[2]);
  EXPECT_LT(ranks[2], ranks[4]);
}

TEST(Is, KeysAreDeterministicAndInRange) {
  const auto a = is_make_keys(5000, 100, 9);
  const auto b = is_make_keys(5000, 100, 9);
  EXPECT_EQ(a, b);
  for (int k : a) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 100);
  }
}

}  // namespace
}  // namespace vgpu::kernels
