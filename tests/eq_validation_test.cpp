// Validates the simulator against the paper's execution-model equations on
// synthetic workloads with exactly controlled stage times:
//
//   Eq. 1 (Figure 4):  native sharing serializes task cycles with context
//                      switches between them;
//   Eq. 2 (Figure 5a / 6a, Tin >= Tout):  T = N*Tin + Tcomp + Tout;
//   Eq. 3 (Figure 5b / 6b, Tout >  Tin):  T = N*Tout + Tcomp + Tin;
//   Eq. 4 combines 2 and 3.
//
// Staging-copy modeling is disabled so the GVM run isolates the quantities
// the equations describe.
#include <gtest/gtest.h>

#include "gvm/experiment.hpp"
#include "model/model.hpp"

namespace vgpu::gvm {
namespace {

constexpr double kH2D = 2.944e9;  // calibrated PCIe rates (spec defaults)
constexpr double kD2H = 3.001e9;

/// A kernel of ~`duration` that stays fully concurrent across 8 clients:
/// 4 blocks at efficiency 0.1 -> total demand 3.2 of 14 SMs.
gpu::KernelLaunch kernel_for(SimDuration duration,
                             const gpu::DeviceSpec& spec) {
  gpu::KernelLaunch l;
  l.name = "synthetic";
  l.geometry = gpu::KernelGeometry{4, 128, 16, 0};
  l.cost.efficiency = 0.1;
  l.cost.flops_per_thread =
      to_seconds(duration) * spec.sm_flops() * l.cost.efficiency / 128.0;
  return l;
}

TaskPlan plan_for(SimDuration t_in, SimDuration t_comp, SimDuration t_out,
                  const gpu::DeviceSpec& spec) {
  TaskPlan plan;
  plan.bytes_in = static_cast<Bytes>(to_seconds(t_in) * kH2D);
  plan.bytes_out = static_cast<Bytes>(to_seconds(t_out) * kD2H);
  plan.kernels = {kernel_for(t_comp, spec)};
  return plan;
}

GvmConfig eq_config() {
  GvmConfig config;
  config.model_staging_copies = false;  // the equations ignore staging
  config.poll_interval = microseconds(5.0);
  return config;
}

void expect_close(SimDuration actual, SimDuration expected,
                  double tolerance = 0.03) {
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(expected),
              tolerance * static_cast<double>(expected));
}

TEST(EqValidation, Eq2InputDominatedPipeline) {
  // Tin = 20 ms > Tout = 10 ms, Tcomp = 50 ms, N = 6:
  // T = 6*20 + 50 + 10 = 180 ms (Figure 5a staircase).
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const TaskPlan plan = plan_for(milliseconds(20.0), milliseconds(50.0),
                                 milliseconds(10.0), spec);
  const RunResult r = run_virtualized(spec, eq_config(), plan, 1, 6);
  expect_close(r.turnaround, milliseconds(180.0));
}

TEST(EqValidation, Eq3OutputDominatedPipeline) {
  // Tin = 10 ms < Tout = 25 ms, Tcomp = 50 ms, N = 6:
  // T = 6*25 + 50 + 10 = 210 ms (Figure 5b: computes wait on retrieves).
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const TaskPlan plan = plan_for(milliseconds(10.0), milliseconds(50.0),
                                 milliseconds(25.0), spec);
  const RunResult r = run_virtualized(spec, eq_config(), plan, 1, 6);
  expect_close(r.turnaround, milliseconds(210.0));
}

TEST(EqValidation, Eq4ComputeDominatedIsFlat) {
  // Negligible I/O, Tcomp = 100 ms, N = 8: T ~ Tcomp.
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  TaskPlan plan;
  plan.kernels = {kernel_for(milliseconds(100.0), spec)};
  const RunResult r = run_virtualized(spec, eq_config(), plan, 1, 8);
  expect_close(r.turnaround, milliseconds(100.0));
}

TEST(EqValidation, Eq4MatchesModelAcrossProcessCounts) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const SimDuration t_in = milliseconds(15.0);
  const SimDuration t_comp = milliseconds(40.0);
  const SimDuration t_out = milliseconds(8.0);
  const TaskPlan plan = plan_for(t_in, t_comp, t_out, spec);
  model::ExecutionProfile p;
  p.t_data_in = t_in;
  p.t_comp = t_comp;
  p.t_data_out = t_out;
  for (int n = 1; n <= 8; ++n) {
    const RunResult r = run_virtualized(spec, eq_config(), plan, 1, n);
    expect_close(r.turnaround, model::total_time_virtualized(p, n), 0.04);
  }
}

TEST(EqValidation, Eq1NativeSerializationStructure) {
  // Native sharing: the DES matches Eq. 1 up to the create/compute overlap
  // it legitimately models (context creations proceed while earlier
  // processes already execute), which Eq. 1's serial-init assumption lacks.
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const SimDuration t_in = milliseconds(12.0);
  const SimDuration t_comp = milliseconds(30.0);
  const SimDuration t_out = milliseconds(6.0);
  const TaskPlan plan = plan_for(t_in, t_comp, t_out, spec);
  model::ExecutionProfile p;
  p.t_init = spec.device_init_time + 4 * spec.ctx_create_time;
  p.t_ctx_switch = spec.ctx_switch_time;
  p.t_data_in = t_in;
  p.t_comp = t_comp;
  p.t_data_out = t_out;
  const SimDuration eq1 = model::total_time_no_virtualization(p, 4);
  const RunResult r = run_baseline(spec, plan, 1, 4);
  EXPECT_LE(r.turnaround, eq1);
  // The overlap can hide at most the last N-1 context creations.
  EXPECT_GE(r.turnaround, eq1 - 4 * spec.ctx_create_time);
}

TEST(EqValidation, Eq1SlopeIsCyclePlusSwitch) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const TaskPlan plan = plan_for(milliseconds(12.0), milliseconds(30.0),
                                 milliseconds(6.0), spec);
  const RunResult r5 = run_baseline(spec, plan, 1, 5);
  const RunResult r7 = run_baseline(spec, plan, 1, 7);
  const double slope = to_ms(r7.turnaround - r5.turnaround) / 2.0;
  // Eq. 1 slope: Tctx + Tin + Tcomp + Tout = 185 + 48 = 233 ms.
  EXPECT_NEAR(slope, 233.0, 8.0);
}

}  // namespace
}  // namespace vgpu::gvm
