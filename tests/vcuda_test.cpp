// Unit tests for the vcuda runtime: contexts, streams, ordering, events,
// functional data movement and kernel bodies.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "des/sim.hpp"
#include "gpu/device.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::vcuda {
namespace {

gpu::DeviceSpec test_spec() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.sm_count = 4;
  spec.device_init_time = milliseconds(10.0);
  spec.ctx_create_time = milliseconds(1.0);
  spec.ctx_switch_time = milliseconds(5.0);
  spec.pcie_h2d_pinned = gb_per_s(1.0);
  spec.pcie_d2h_pinned = gb_per_s(1.0);
  return spec;
}

gpu::KernelLaunch tiny_kernel(const char* name) {
  gpu::KernelLaunch l;
  l.name = name;
  l.geometry = gpu::KernelGeometry{2, 128, 16, 0};
  l.cost = gpu::KernelCost{1e5, 16.0, 1.0};
  return l;
}

TEST(Vcuda, ContextCreationAndTeardown) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt, gpu::Device& dev) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    EXPECT_TRUE(dev.context_exists(ctx->id()));
    const gpu::ContextId id = ctx->id();
    ctx.reset();
    EXPECT_FALSE(dev.context_exists(id));
  }(rt, dev));
  sim.run();
  EXPECT_EQ(dev.stats().ctx_creates, 1);
}

TEST(Vcuda, FunctionalCopyRoundTrip) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto buf = ctx->malloc(1024, /*backed=*/true);
    VGPU_ASSERT(buf.ok());
    std::vector<std::byte> src(1024), dst(1024);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<std::byte>(i * 7);
    }
    co_await ctx->memcpy_h2d(*buf, src.data(), 1024);
    co_await ctx->memcpy_d2h(dst.data(), *buf, 1024);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), 1024), 0);
    VGPU_ASSERT(ctx->free(*buf).ok());
  }(rt));
  sim.run();
}

TEST(Vcuda, KernelBodyRunsExactlyOnceAtCompletion) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  int runs = 0;
  SimTime body_time = -1;
  sim.spawn([](Runtime& rt, des::Simulator& s, int& runs,
               SimTime& bt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    const SimTime before = s.now();
    co_await ctx->launch_sync(tiny_kernel("k"), [&] {
      ++runs;
      bt = s.now();
    });
    EXPECT_GT(s.now(), before);  // kernel consumed simulated time
  }(rt, sim, runs, body_time));
  sim.run();
  EXPECT_EQ(runs, 1);
  EXPECT_GT(body_time, 0);
}

TEST(Vcuda, StreamOrderingIsFifo) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  std::vector<int> order;
  sim.spawn([](Runtime& rt, std::vector<int>& order) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Stream& s = ctx->default_stream();
    for (int i = 0; i < 5; ++i) {
      s.launch(tiny_kernel("k"), [&order, i] { order.push_back(i); });
    }
    co_await s.synchronize();
  }(rt, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Vcuda, TwoStreamsOverlapKernels) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  SimDuration serial = 0, parallel = 0;
  sim.spawn([](Runtime& rt, des::Simulator& s, SimDuration& serial,
               SimDuration& parallel) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    // Serial: two kernels on one stream.
    SimTime t0 = s.now();
    ctx->default_stream().launch(tiny_kernel("a"));
    ctx->default_stream().launch(tiny_kernel("b"));
    co_await ctx->default_stream().synchronize();
    serial = s.now() - t0;
    // Parallel: one kernel on each of two streams.
    Stream& s1 = ctx->create_stream();
    Stream& s2 = ctx->create_stream();
    t0 = s.now();
    s1.launch(tiny_kernel("a"));
    s2.launch(tiny_kernel("b"));
    co_await ctx->synchronize();
    parallel = s.now() - t0;
  }(rt, sim, serial, parallel));
  sim.run();
  EXPECT_LT(parallel, serial);
  EXPECT_GE(dev.stats().max_open_kernels, 2);
}

TEST(Vcuda, CopyComputeOverlapAcrossStreams) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  SimDuration elapsed = 0;
  sim.spawn([](Runtime& rt, des::Simulator& s,
               SimDuration& elapsed) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto buf = ctx->malloc(100 * kMB);
    VGPU_ASSERT(buf.ok());
    Stream& s1 = ctx->create_stream();
    Stream& s2 = ctx->create_stream();
    const SimTime t0 = s.now();
    // 100 ms copy on s1 overlaps a long kernel on s2.
    s1.memcpy_h2d_async(*buf, nullptr, 100 * kMB);
    gpu::KernelLaunch big = tiny_kernel("big");
    big.geometry.grid_blocks = 24;    // fills the 4-SM device
    // ~100 ms of compute: 24 blocks * 128 threads * flops / 294.4 GF.
    big.cost.flops_per_thread = 9.58e6;
    s2.launch(big);
    co_await ctx->synchronize();
    elapsed = s.now() - t0;
  }(rt, sim, elapsed));
  sim.run();
  // Full overlap: total well below the 200 ms serial sum.
  EXPECT_LT(to_ms(elapsed), 140.0);
}

TEST(Vcuda, EventRecordAndQuery) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Event ev;
    EXPECT_FALSE(ev.recorded());
    ctx->default_stream().launch(tiny_kernel("k"));
    ctx->default_stream().record(ev);
    EXPECT_TRUE(ev.recorded());
    co_await ctx->default_stream().synchronize();
    EXPECT_TRUE(ev.query());
    EXPECT_GT(ev.completion_time(), 0);
  }(rt));
  sim.run();
}

TEST(Vcuda, StreamWaitEventOrdersAcrossStreams) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  std::vector<int> order;
  sim.spawn([](Runtime& rt, std::vector<int>& order) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Stream& s1 = ctx->create_stream();
    Stream& s2 = ctx->create_stream();
    Event ev;
    s1.launch(tiny_kernel("first"), [&order] { order.push_back(1); });
    s1.record(ev);
    s2.wait_event(ev);
    s2.launch(tiny_kernel("second"), [&order] { order.push_back(2); });
    co_await ctx->synchronize();
  }(rt, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Vcuda, SynchronizeIdleStreamReturnsImmediately) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt, des::Simulator& s) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    const SimTime t0 = s.now();
    EXPECT_TRUE(ctx->default_stream().idle());
    co_await ctx->default_stream().synchronize();
    EXPECT_EQ(s.now(), t0);
  }(rt, sim));
  sim.run();
}

TEST(Vcuda, OffsetCopiesTargetSubranges) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto buf = ctx->malloc(16, /*backed=*/true);
    VGPU_ASSERT(buf.ok());
    const std::uint32_t a = 0xdeadbeef, b = 0xcafef00d;
    Stream& s = ctx->default_stream();
    s.memcpy_h2d_async(*buf, &a, 4, true, /*dst_offset=*/0);
    s.memcpy_h2d_async(*buf, &b, 4, true, /*dst_offset=*/8);
    co_await s.synchronize();
    std::uint32_t out = 0;
    s.memcpy_d2h_async(&out, *buf, 4, true, /*src_offset=*/8);
    co_await s.synchronize();
    EXPECT_EQ(out, b);
  }(rt));
  sim.run();
}

TEST(Vcuda, ManyOpsAcrossManyStreamsComplete) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  int completed = 0;
  sim.spawn([](Runtime& rt, int& completed) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    std::vector<Stream*> streams;
    for (int i = 0; i < 8; ++i) streams.push_back(&ctx->create_stream());
    for (int round = 0; round < 5; ++round) {
      for (Stream* s : streams) {
        s->launch(tiny_kernel("k"), [&completed] { ++completed; });
      }
    }
    co_await ctx->synchronize();
  }(rt, completed));
  sim.run();
  EXPECT_EQ(completed, 40);
  EXPECT_EQ(dev.stats().kernels_completed, 40);
}


TEST(Vcuda, MemsetFillsBacking) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto buf = ctx->malloc(64, /*backed=*/true);
    VGPU_ASSERT(buf.ok());
    Stream& s = ctx->default_stream();
    s.memset_async(*buf, std::byte{0xAB}, 64);
    s.memset_async(*buf, std::byte{0x00}, 16, /*dst_offset=*/8);
    co_await s.synchronize();
    const std::byte* p = buf->data();
    EXPECT_EQ(p[0], std::byte{0xAB});
    EXPECT_EQ(p[8], std::byte{0x00});
    EXPECT_EQ(p[23], std::byte{0x00});
    EXPECT_EQ(p[24], std::byte{0xAB});
  }(rt));
  sim.run();
  EXPECT_EQ(dev.stats().bytes_memset, 80);
}

TEST(Vcuda, DeviceToDeviceCopyMovesBackingBytes) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt, des::Simulator& s) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto a = ctx->malloc(256, true);
    auto b = ctx->malloc(256, true);
    VGPU_ASSERT(a.ok() && b.ok());
    const std::uint64_t magic = 0x1122334455667788ULL;
    Stream& st = ctx->default_stream();
    st.memcpy_h2d_async(*a, &magic, 8, true, /*dst_offset=*/32);
    const SimTime before = s.now();
    st.memcpy_d2d_async(*b, *a, 8, /*dst_offset=*/0, /*src_offset=*/32);
    co_await st.synchronize();
    EXPECT_GT(s.now(), before);  // D2D consumed device time
    std::uint64_t out = 0;
    st.memcpy_d2h_async(&out, *b, 8);
    co_await st.synchronize();
    EXPECT_EQ(out, magic);
  }(rt, sim));
  sim.run();
  EXPECT_EQ(dev.stats().bytes_d2d, 8);
}

TEST(Vcuda, StreamCallbackRunsInOrderWithoutDeviceTime) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  std::vector<int> order;
  sim.spawn([](Runtime& rt, std::vector<int>& order) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Stream& s = ctx->default_stream();
    s.launch(tiny_kernel("k1"), [&order] { order.push_back(1); });
    s.add_callback([&order] { order.push_back(2); });
    s.launch(tiny_kernel("k2"), [&order] { order.push_back(3); });
    co_await s.synchronize();
  }(rt, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Vcuda, EventElapsedMeasuresKernelTime) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  double elapsed = -1.0;
  sim.spawn([](Runtime& rt, double& elapsed) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Stream& s = ctx->default_stream();
    Event start, stop;
    s.record(start);
    s.launch(tiny_kernel("k"));
    s.record(stop);
    co_await s.synchronize();
    elapsed = Event::elapsed_ms(start, stop);
  }(rt, elapsed));
  sim.run();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
}


TEST(Vcuda, PinnedLedgerTracksReservations) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev, /*host_memory=*/1 * kMB);
  auto a = rt.alloc_pinned(400 * kKB);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(rt.pinned_ledger().used(), 400 * kKB);
  {
    auto b = rt.alloc_pinned(500 * kKB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(rt.pinned_ledger().used(), 900 * kKB);
    // Exhausted: a third reservation fails.
    auto c = rt.alloc_pinned(200 * kKB);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), ErrorCode::kOutOfMemory);
  }
  // b released on scope exit.
  EXPECT_EQ(rt.pinned_ledger().used(), 400 * kKB);
  auto d = rt.alloc_pinned(600 * kKB);
  EXPECT_TRUE(d.ok());
}

TEST(Vcuda, PinnedBufferMoveTransfersOwnership) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev, 1 * kMB);
  auto a = rt.alloc_pinned(100 * kKB);
  ASSERT_TRUE(a.ok());
  PinnedBuffer moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(a->valid());
  EXPECT_EQ(rt.pinned_ledger().used(), 100 * kKB);
}


TEST(Vcuda, TryCreateContextReportsAdmissionErrors) {
  des::Simulator sim;
  gpu::DeviceSpec spec = test_spec();
  spec.compute_mode = gpu::ComputeMode::kExclusive;
  gpu::Device dev(sim, spec);
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto first = co_await rt.try_create_context();
    EXPECT_TRUE(first.ok());
    auto second = co_await rt.try_create_context();
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), ErrorCode::kFailedPrecondition);
  }(rt));
  sim.run();
}

TEST(Vcuda, DestroyBusyContextRejected) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt, gpu::Device& dev, des::Simulator& s)
                -> des::Task<> {
    auto ctx = co_await rt.create_context();
    gpu::KernelLaunch slow = tiny_kernel("slow");
    slow.cost.flops_per_thread = 1e8;
    ctx->default_stream().launch(slow);
    co_await s.delay(microseconds(50.0));  // kernel now in flight
    EXPECT_EQ(dev.destroy_context(ctx->id()).code(),
              ErrorCode::kFailedPrecondition);
    co_await ctx->default_stream().synchronize();
    // Context destruction succeeds once idle (via ~Context at scope end).
  }(rt, dev, sim));
  sim.run();
}

TEST(VcudaGraph, CaptureReplayReproducesCopiesKernelsAndMemsets) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  int kernel_runs = 0;
  sim.spawn([](Runtime& rt, int& kernel_runs) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    auto buf = ctx->malloc(256, /*backed=*/true);
    VGPU_ASSERT(buf.ok());
    std::vector<std::byte> src(256), dst(256);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<std::byte>(i ^ 0x5a);
    }
    Stream& s = ctx->default_stream();

    // Record H2D + memset tail + kernel + D2H once; nothing runs yet.
    VGPU_ASSERT(s.begin_capture().ok());
    EXPECT_TRUE(s.capturing());
    s.memcpy_h2d_async(*buf, src.data(), 256);
    s.memset_async(*buf, std::byte{0x7f}, 64, /*dst_offset=*/192);
    s.launch(tiny_kernel("graphed"), [&kernel_runs] { ++kernel_runs; });
    s.memcpy_d2h_async(dst.data(), *buf, 256);
    EXPECT_EQ(kernel_runs, 0);
    auto graph = s.end_capture();
    VGPU_ASSERT(graph.ok());
    EXPECT_FALSE(s.capturing());
    EXPECT_EQ(graph->node_count(), 4);

    // Replaying twice runs the whole sequence each time, in stream order.
    for (int iter = 1; iter <= 2; ++iter) {
      std::fill(dst.begin(), dst.end(), std::byte{0});
      s.launch_graph(*graph);
      co_await s.synchronize();
      EXPECT_EQ(kernel_runs, iter);
      EXPECT_EQ(std::memcmp(dst.data(), src.data(), 192), 0);
      for (std::size_t i = 192; i < 256; ++i) {
        EXPECT_EQ(dst[i], std::byte{0x7f});
      }
    }
    VGPU_ASSERT(ctx->free(*buf).ok());
  }(rt, kernel_runs));
  sim.run();
  EXPECT_EQ(kernel_runs, 2);
}

TEST(VcudaGraph, EventAndCallbackOpsInvalidateCapture) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  Runtime rt(sim, dev);
  sim.spawn([](Runtime& rt) -> des::Task<> {
    auto ctx = co_await rt.create_context();
    Stream& s = ctx->default_stream();

    // A record() poisons the capture: end_capture reports the violation.
    VGPU_ASSERT(s.begin_capture().ok());
    EXPECT_EQ(s.begin_capture().code(), ErrorCode::kFailedPrecondition);
    s.launch(tiny_kernel("k"));
    Event ev;
    s.record(ev);
    auto poisoned = s.end_capture();
    EXPECT_FALSE(poisoned.ok());
    EXPECT_EQ(poisoned.status().code(), ErrorCode::kInvalidArgument);

    // Empty captures are rejected too; end without begin is a precondition
    // failure. The stream stays usable for a fresh, valid capture.
    VGPU_ASSERT(s.begin_capture().ok());
    EXPECT_EQ(s.end_capture().status().code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(s.end_capture().status().code(),
              ErrorCode::kFailedPrecondition);
    VGPU_ASSERT(s.begin_capture().ok());
    s.launch(tiny_kernel("ok"));
    auto graph = s.end_capture();
    VGPU_ASSERT(graph.ok());
    EXPECT_EQ(graph->node_count(), 1);
    s.launch_graph(*graph);
    co_await s.synchronize();
  }(rt));
  sim.run();
}

}  // namespace
}  // namespace vgpu::vcuda
