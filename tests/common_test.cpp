// Unit tests for src/common: units, status, rng, stats, table, math.
// Also compiles the umbrella header as a smoke check of the public API.
#include <gtest/gtest.h>

#include "vgpu.hpp"

#include <limits>
#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/flags.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace vgpu {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(milliseconds(1.0), 1'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(123.5)), 123.5);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.0)), 2.0);
  EXPECT_EQ(microseconds(1.0), 1000);
}

TEST(Units, TransferTime) {
  // 1 GB at 1 GB/s = 1 s.
  EXPECT_EQ(transfer_time(1'000'000'000, gb_per_s(1.0)), kSecond);
  // Zero bytes take zero time.
  EXPECT_EQ(transfer_time(0, gb_per_s(1.0)), 0);
  // Tiny transfers still advance time by >= 1 ns.
  EXPECT_GE(transfer_time(1, gb_per_s(100.0)), 1);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_time(milliseconds(1.5)), "1.500 ms");
  EXPECT_EQ(format_time(seconds(2.25)), "2.250 s");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
}

TEST(Status, OkAndErrors) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "OK");

  Status err = InvalidArgument("bad grid");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(err.to_string().find("bad grid"), std::string::npos);
}

TEST(Status, StatusOrValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);

  StatusOr<int> e = NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), ErrorCode::kNotFound);
}

Status fails() { return Internal("boom"); }
Status propagates() {
  VGPU_RETURN_IF_ERROR(fails());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(propagates().code(), ErrorCode::kInternal);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(99);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(Stats, RunningStatBasics) {
  RunningStat st;
  for (double x : {1.0, 2.0, 3.0, 4.0}) st.add(x);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
}

// Pins the canonical interpolation rule at rank q*(n-1):
// sorted[lo]*(1-frac) + sorted[hi]*frac. Every percentile in the repo
// (scheduler waits, bench percentiles, SLO reports) flows through this.
TEST(Stats, PercentileRankRulePinned) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.95), 10.0 * 0.0 + 38.5);  // rank 2.85
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 17.5);               // rank 0.75
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20.0);          // exact rank 1
}

TEST(Stats, PercentileEdgeCases) {
  // Empty and single-sample sets must not abort or index out of range.
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
  // Two samples: pure interpolation between them.
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 0.99), 1.0 + 2.0 * 0.99);
  // Out-of-range and NaN quantiles clamp instead of reading wild memory.
  std::vector<double> v{10, 20, 30};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, std::numeric_limits<double>::quiet_NaN()),
                   10.0);
}

TEST(Stats, SampleStatsMatchesFreeFunction) {
  std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};  // unsorted on purpose
  SampleStats stats(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(stats.percentile(q), percentile(v, q)) << q;
  }
  SampleStats empty{std::vector<double>{}};
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Table, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip) {
  TablePrinter t({"a", "b"});
  t.add_row({"x,y", "2"});
  const std::string path = ::testing::TempDir() + "/vgpu_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",2");
}


TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",        "--procs=8",   "--size=1000",
                        "--verbose",   "positional1", "--rate=2.5",
                        "--quiet=false"};
  Flags flags(7, argv);
  EXPECT_EQ(flags.program(), "prog");
  EXPECT_EQ(flags.get_long("procs", 1), 8);
  EXPECT_EQ(flags.get_long("size", 1), 1000);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.get_bool("quiet", true));
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_long("missing", 42), 42);
  EXPECT_EQ(flags.get_string("missing", "fallback"), "fallback");
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, BareSwitchBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--a", "--b=2"};
  Flags flags(3, argv);
  EXPECT_TRUE(flags.get_bool("a"));
  EXPECT_EQ(flags.get_long("b", 0), 2);
}

TEST(Flags, SeparatedValueIsPositionalNotFlagValue) {
  const char* argv[] = {"prog", "--size", "1000"};
  Flags flags(3, argv);
  EXPECT_TRUE(flags.get_bool("size"));          // bare switch
  EXPECT_EQ(flags.get_long("size", 7), 7);      // empty value -> fallback
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "1000");
}

TEST(Math, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
}

TEST(Math, DeviationPercent) {
  EXPECT_NEAR(deviation_percent(2.3, 2.721), 15.47, 0.1);
  EXPECT_DOUBLE_EQ(deviation_percent(5.0, 5.0), 0.0);
}

TEST(Math, AlmostEqual) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
}

}  // namespace
}  // namespace vgpu
