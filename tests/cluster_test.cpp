// Tests for the cluster substrate: network timing, MPI-like point-to-point
// and collectives, and the full cluster SPMD experiment with exact
// functional verification against sequential EP.
#include <gtest/gtest.h>

#include "cluster/comm.hpp"
#include "cluster/experiment.hpp"
#include "cluster/network.hpp"
#include "kernels/ep.hpp"

namespace vgpu::cluster {
namespace {

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(Network, TransferTimeIsLatencyPlusBytesOverBandwidth) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = microseconds(2.0);
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 2);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    co_await net.transfer(0, 1, 1'000'000);  // 1 MB at 1 GB/s = 1 ms
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_EQ(elapsed, microseconds(2.0) + milliseconds(1.0));
  EXPECT_EQ(net.bytes_on_wire(), 1'000'000);
}

TEST(Network, SameSourceTransfersSerializeOnTheNic) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = 0;
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 3);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    des::CountdownLatch done(s, 2);
    for (int dst : {1, 2}) {
      s.spawn([](Network& net, int dst, des::CountdownLatch& l) -> des::Task<> {
        co_await net.transfer(0, dst, 1'000'000);
        l.count_down();
      }(net, dst, done));
    }
    co_await done.wait();
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_GE(elapsed, milliseconds(2.0));  // node 0's TX serializes
}

TEST(Network, DistinctPairsRunConcurrently) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = 0;
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 4);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    des::CountdownLatch done(s, 2);
    s.spawn([](Network& n, des::CountdownLatch& l) -> des::Task<> {
      co_await n.transfer(0, 1, 1'000'000);
      l.count_down();
    }(net, done));
    s.spawn([](Network& n, des::CountdownLatch& l) -> des::Task<> {
      co_await n.transfer(2, 3, 1'000'000);
      l.count_down();
    }(net, done));
    co_await done.wait();
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_LT(elapsed, milliseconds(1.2));  // full bisection: ~1 ms, not 2
}

TEST(Network, IntraNodeUsesLocalPath) {
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, 2);
  sim.spawn([](Network& n) -> des::Task<> {
    co_await n.transfer(1, 1, 1'000'000);
  }(net));
  sim.run();
  EXPECT_EQ(net.bytes_on_wire(), 0);  // never touched the fabric
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

/// Spawns `n` ranks running `body(comm)` and runs the simulation.
template <typename Body>
void run_ranks(int nodes, int ranks, Body body) {
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, nodes);
  ClusterComm world(sim, net, ranks);
  for (int r = 0; r < ranks; ++r) {
    sim.spawn(body(world.communicator(r)));
  }
  sim.run();
}

TEST(Comm, SendRecvCarriesPayload) {
  std::vector<double> received;
  run_ranks(2, 2, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      co_await comm.send(1, Message::of<double>(7, {data.data(), 3}));
    } else {
      const Message m = co_await comm.recv(0, 7);
      received = m.as<double>().value();
      EXPECT_EQ(m.source, 0);
    }
  });
  EXPECT_EQ(received, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(Comm, TagsMatchIndependently) {
  std::vector<int> order;
  run_ranks(1, 2, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() == 0) {
      const double a = 1, b = 2;
      co_await comm.send(1, Message::of<double>(/*tag*/ 20, {&a, 1}));
      co_await comm.send(1, Message::of<double>(/*tag*/ 10, {&b, 1}));
    } else {
      // Receive in the opposite tag order: matching is per tag.
      const Message ten = co_await comm.recv(0, 10);
      order.push_back(static_cast<int>(ten.as<double>().value()[0]));
      const Message twenty = co_await comm.recv(0, 20);
      order.push_back(static_cast<int>(twenty.as<double>().value()[0]));
    }
    co_return;
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Comm, SameSourceTagPairPreservesFifoUnderInterleavedSends) {
  // Rank 0 interleaves two tag streams; each (source, tag) pair must stay
  // FIFO regardless of the interleaving.
  std::vector<int> tag_a, tag_b;
  run_ranks(1, 2, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() == 0) {
      for (const auto& [tag, v] : std::vector<std::pair<int, double>>{
               {7, 1}, {8, 10}, {7, 2}, {8, 20}, {7, 3}}) {
        const double d = v;
        co_await comm.send(1, Message::of<double>(tag, {&d, 1}));
      }
    } else {
      for (int i = 0; i < 3; ++i) {
        const Message m = co_await comm.recv(0, 7);
        tag_a.push_back(static_cast<int>(m.as<double>().value()[0]));
      }
      for (int i = 0; i < 2; ++i) {
        const Message m = co_await comm.recv(0, 8);
        tag_b.push_back(static_cast<int>(m.as<double>().value()[0]));
      }
    }
  });
  EXPECT_EQ(tag_a, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(tag_b, (std::vector<int>{10, 20}));
}

TEST(Comm, DistinctSourcesMatchIndependentlyAndStayFifo) {
  // Two senders share a tag; the receiver drains them in opposite orders.
  // Matching is per (source, tag), so neither stream sees the other's
  // messages and each stays FIFO.
  std::vector<int> from1, from2;
  run_ranks(2, 3, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() > 0) {
      for (int i = 0; i < 2; ++i) {
        const double v = comm.rank() * 100 + i;
        co_await comm.send(0, Message::of<double>(5, {&v, 1}));
      }
    } else {
      for (int i = 0; i < 2; ++i) {
        const Message m = co_await comm.recv(2, 5);
        from2.push_back(static_cast<int>(m.as<double>().value()[0]));
      }
      for (int i = 0; i < 2; ++i) {
        const Message m = co_await comm.recv(1, 5);
        from1.push_back(static_cast<int>(m.as<double>().value()[0]));
      }
    }
  });
  EXPECT_EQ(from1, (std::vector<int>{100, 101}));
  EXPECT_EQ(from2, (std::vector<int>{200, 201}));
}

TEST(Comm, MismatchedTagHangsUntilAMatchingSendArrives) {
  // Matching is wildcard-free: a recv posted for tag 99 must not complete
  // on a tag-7 send, no matter how long it waits (in a real MPI program
  // this is the hang a test timeout surfaces). A probe checks the recv is
  // still parked well past the send, then releases it with a genuine
  // match so the simulation drains cleanly.
  bool completed = false;
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, 1);
  ClusterComm world(sim, net, 2);
  sim.spawn([](Communicator comm, bool& done) -> des::Task<> {
    (void)co_await comm.recv(0, 99);
    done = true;
  }(world.communicator(1), completed));
  sim.spawn([](des::Simulator& s, Communicator comm,
               bool& done) -> des::Task<> {
    const double v = 1.0;
    co_await comm.send(1, Message::of<double>(7, {&v, 1}));  // wrong tag
    co_await s.delay(milliseconds(50.0));
    EXPECT_FALSE(done);  // still hung long after the mismatched send
    co_await comm.send(1, Message::of<double>(99, {&v, 1}));
  }(sim, world.communicator(0), completed));
  sim.run();
  EXPECT_TRUE(completed);
}

TEST(Comm, PayloadShapeMismatchSurfacesAsStatus) {
  Message m;
  m.payload.resize(3);  // not a whole number of doubles
  const auto decoded = m.as<double>();
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Comm, ReduceLaneCountMismatchPropagatesAsStatus) {
  // Rank 1 contributes fewer lanes than the root expects: the root reports
  // kInvalidArgument instead of aborting the process.
  Status at_root = Status::Ok();
  run_ranks(1, 2, [&](Communicator comm) -> des::Task<> {
    std::vector<double> mine(comm.rank() == 0 ? 2 : 1, 1.0);
    auto r = co_await comm.reduce_sum(0, std::move(mine));
    if (comm.rank() == 0) at_root = r.status();
  });
  EXPECT_EQ(at_root.code(), ErrorCode::kInvalidArgument);
}

TEST(Comm, AllgatherUnequalContributionsFailEverywhere) {
  // The equal-count contract is enforced at the root and the verdict is
  // broadcast, so every rank sees the same error instead of a hang.
  std::vector<Status> status(3, Status::Ok());
  run_ranks(1, 3, [&](Communicator comm) -> des::Task<> {
    Message m;
    m.payload.resize(comm.rank() == 1 ? 16 : 8);
    auto r = co_await comm.allgather(std::move(m));
    status[static_cast<std::size_t>(comm.rank())] = r.status();
  });
  for (const Status& s : status) {
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  }
}

class CommCollective : public ::testing::TestWithParam<int> {};

TEST_P(CommCollective, BarrierHoldsEveryoneUntilLastArrival) {
  const int ranks = GetParam();
  std::vector<SimTime> release_times(static_cast<std::size_t>(ranks));
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, 2);
  ClusterComm world(sim, net, ranks);
  for (int r = 0; r < ranks; ++r) {
    sim.spawn([](des::Simulator& s, Communicator comm,
                 std::vector<SimTime>& out) -> des::Task<> {
      co_await s.delay(milliseconds(comm.rank() * 3.0));  // staggered
      co_await comm.barrier();
      out[static_cast<std::size_t>(comm.rank())] = s.now();
    }(sim, world.communicator(r), release_times));
  }
  sim.run();
  const SimTime last_arrival = milliseconds((ranks - 1) * 3.0);
  for (SimTime t : release_times) EXPECT_GE(t, last_arrival);
}

TEST_P(CommCollective, BcastDeliversRootPayloadToAll) {
  const int ranks = GetParam();
  std::vector<double> got(static_cast<std::size_t>(ranks), 0.0);
  const int root = ranks > 2 ? 2 : 0;
  run_ranks(2, ranks, [&, root](Communicator comm) -> des::Task<> {
    Message m;
    if (comm.rank() == root) {
      const double v = 42.25;
      m = Message::of<double>(0, {&v, 1});
    }
    const Message out = co_await comm.bcast(root, std::move(m));
    got[static_cast<std::size_t>(comm.rank())] = out.as<double>().value()[0];
  });
  for (double v : got) EXPECT_EQ(v, 42.25);
}

TEST_P(CommCollective, AllreduceSumsAcrossRanks) {
  const int ranks = GetParam();
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(ranks));
  run_ranks(2, ranks, [&](Communicator comm) -> des::Task<> {
    std::vector<double> mine{static_cast<double>(comm.rank()), 1.0};
    results[static_cast<std::size_t>(comm.rank())] =
        (co_await comm.allreduce_sum(std::move(mine))).value();
  });
  const double expect0 = ranks * (ranks - 1) / 2.0;
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0], expect0);
    EXPECT_DOUBLE_EQ(r[1], static_cast<double>(ranks));
  }
}

TEST_P(CommCollective, ReduceSumConcentratesAtRoot) {
  const int ranks = GetParam();
  const int root = ranks > 2 ? 1 : 0;  // non-zero root off the tree base
  std::vector<std::vector<double>> results(static_cast<std::size_t>(ranks));
  run_ranks(2, ranks, [&, root](Communicator comm) -> des::Task<> {
    std::vector<double> mine{static_cast<double>(comm.rank()), 2.0};
    results[static_cast<std::size_t>(comm.rank())] =
        (co_await comm.reduce_sum(root, std::move(mine))).value();
  });
  for (int r = 0; r < ranks; ++r) {
    const auto& v = results[static_cast<std::size_t>(r)];
    if (r == root) {
      ASSERT_EQ(v.size(), 2u);
      EXPECT_DOUBLE_EQ(v[0], ranks * (ranks - 1) / 2.0);
      EXPECT_DOUBLE_EQ(v[1], 2.0 * ranks);
    } else {
      EXPECT_TRUE(v.empty());  // MPI_Reduce: only the root holds the sum
    }
  }
}

TEST_P(CommCollective, GatherCollectsRankOrderedWithUnequalSizes) {
  const int ranks = GetParam();
  const int root = ranks > 1 ? ranks - 1 : 0;
  std::vector<Message> at_root;
  run_ranks(2, ranks, [&, root](Communicator comm) -> des::Task<> {
    // Variable-length contribution: rank r sends r+1 doubles of value r.
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                             static_cast<double>(comm.rank()));
    auto r = co_await comm.gather(
        root, Message::of<double>(0, {mine.data(), mine.size()}));
    if (comm.rank() == root) at_root = std::move(r).value();
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const Message& m = at_root[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.source, r);
    const std::vector<double> v = m.as<double>().value();
    ASSERT_EQ(v.size(), static_cast<std::size_t>(r + 1));
    for (double x : v) EXPECT_EQ(x, static_cast<double>(r));
  }
}

TEST_P(CommCollective, AllgatherDeliversEveryPayloadEverywhere) {
  const int ranks = GetParam();
  std::vector<std::vector<Message>> results(static_cast<std::size_t>(ranks));
  run_ranks(2, ranks, [&](Communicator comm) -> des::Task<> {
    const double v = 10.0 + comm.rank();
    results[static_cast<std::size_t>(comm.rank())] =
        (co_await comm.allgather(Message::of<double>(3, {&v, 1}))).value();
  });
  for (const auto& all : results) {
    ASSERT_EQ(all.size(), static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      const Message& m = all[static_cast<std::size_t>(r)];
      EXPECT_EQ(m.source, r);
      EXPECT_EQ(m.as<double>().value()[0], 10.0 + r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommCollective,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// ---------------------------------------------------------------------------
// Cluster SPMD experiment
// ---------------------------------------------------------------------------

TEST(ClusterExperiment, AllreducedEpMatchesSequentialExactly) {
  ClusterConfig config;
  config.nodes = 2;
  config.cores_per_node = 4;
  const int m = 16;
  const ClusterResult r = run_cluster_ep(config, m);
  const kernels::EpResult expect = kernels::ep_sequential(m);
  EXPECT_EQ(r.reduced.q, expect.q);  // exact integer tallies through the
                                     // whole GPU + GVM + MPI stack
  EXPECT_EQ(r.reduced.pairs_accepted, expect.pairs_accepted);
  EXPECT_NEAR(r.reduced.sx, expect.sx, 1e-7);
  EXPECT_NEAR(r.reduced.sy, expect.sy, 1e-7);
  EXPECT_GT(r.bytes_on_wire, 0);
}

TEST(ClusterExperiment, VirtualizationWinsAtClusterScaleToo) {
  ClusterConfig virt;
  virt.nodes = 2;
  virt.cores_per_node = 8;
  ClusterConfig native = virt;
  native.virtualized = false;
  const int m = 24;
  const ClusterResult rv = run_cluster_ep(virt, m);
  const ClusterResult rn = run_cluster_ep(native, m);
  EXPECT_LT(rv.turnaround, rn.turnaround);
  EXPECT_EQ(rv.ctx_switches, 0);
  EXPECT_GT(rn.ctx_switches, 0);
  // Both compute identical physics.
  EXPECT_EQ(rv.reduced.q, rn.reduced.q);
}

TEST(ClusterExperiment, MoreNodesShortenCommputePhase) {
  ClusterConfig two;
  two.nodes = 2;
  two.cores_per_node = 4;
  ClusterConfig four = two;
  four.nodes = 4;  // same total parallelism per node count rises
  const int m = 22;
  const ClusterResult r2 = run_cluster_ep(two, m);
  const ClusterResult r4 = run_cluster_ep(four, m);
  // Twice the GPUs for the same per-rank partitioning: the compute phase
  // spreads; turnaround must not grow.
  EXPECT_LE(r4.turnaround, r2.turnaround + milliseconds(5.0));
  EXPECT_EQ(r2.reduced.q, r4.reduced.q);
}

}  // namespace
}  // namespace vgpu::cluster
