// Tests for the cluster substrate: network timing, MPI-like point-to-point
// and collectives, and the full cluster SPMD experiment with exact
// functional verification against sequential EP.
#include <gtest/gtest.h>

#include "cluster/comm.hpp"
#include "cluster/experiment.hpp"
#include "cluster/network.hpp"
#include "kernels/ep.hpp"

namespace vgpu::cluster {
namespace {

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(Network, TransferTimeIsLatencyPlusBytesOverBandwidth) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = microseconds(2.0);
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 2);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    co_await net.transfer(0, 1, 1'000'000);  // 1 MB at 1 GB/s = 1 ms
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_EQ(elapsed, microseconds(2.0) + milliseconds(1.0));
  EXPECT_EQ(net.bytes_on_wire(), 1'000'000);
}

TEST(Network, SameSourceTransfersSerializeOnTheNic) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = 0;
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 3);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    des::CountdownLatch done(s, 2);
    for (int dst : {1, 2}) {
      s.spawn([](Network& net, int dst, des::CountdownLatch& l) -> des::Task<> {
        co_await net.transfer(0, dst, 1'000'000);
        l.count_down();
      }(net, dst, done));
    }
    co_await done.wait();
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_GE(elapsed, milliseconds(2.0));  // node 0's TX serializes
}

TEST(Network, DistinctPairsRunConcurrently) {
  des::Simulator sim;
  NetworkSpec spec;
  spec.latency = 0;
  spec.bandwidth = gb_per_s(1.0);
  Network net(sim, spec, 4);
  SimDuration elapsed = 0;
  sim.spawn([](des::Simulator& s, Network& net,
               SimDuration& out) -> des::Task<> {
    const SimTime t0 = s.now();
    des::CountdownLatch done(s, 2);
    s.spawn([](Network& n, des::CountdownLatch& l) -> des::Task<> {
      co_await n.transfer(0, 1, 1'000'000);
      l.count_down();
    }(net, done));
    s.spawn([](Network& n, des::CountdownLatch& l) -> des::Task<> {
      co_await n.transfer(2, 3, 1'000'000);
      l.count_down();
    }(net, done));
    co_await done.wait();
    out = s.now() - t0;
  }(sim, net, elapsed));
  sim.run();
  EXPECT_LT(elapsed, milliseconds(1.2));  // full bisection: ~1 ms, not 2
}

TEST(Network, IntraNodeUsesLocalPath) {
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, 2);
  sim.spawn([](Network& n) -> des::Task<> {
    co_await n.transfer(1, 1, 1'000'000);
  }(net));
  sim.run();
  EXPECT_EQ(net.bytes_on_wire(), 0);  // never touched the fabric
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

/// Spawns `n` ranks running `body(comm)` and runs the simulation.
template <typename Body>
void run_ranks(int nodes, int ranks, Body body) {
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, nodes);
  ClusterComm world(sim, net, ranks);
  for (int r = 0; r < ranks; ++r) {
    sim.spawn(body(world.communicator(r)));
  }
  sim.run();
}

TEST(Comm, SendRecvCarriesPayload) {
  std::vector<double> received;
  run_ranks(2, 2, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      co_await comm.send(1, Message::of<double>(7, {data.data(), 3}));
    } else {
      const Message m = co_await comm.recv(0, 7);
      received = m.as<double>();
      EXPECT_EQ(m.source, 0);
    }
  });
  EXPECT_EQ(received, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(Comm, TagsMatchIndependently) {
  std::vector<int> order;
  run_ranks(1, 2, [&](Communicator comm) -> des::Task<> {
    if (comm.rank() == 0) {
      const double a = 1, b = 2;
      co_await comm.send(1, Message::of<double>(/*tag*/ 20, {&a, 1}));
      co_await comm.send(1, Message::of<double>(/*tag*/ 10, {&b, 1}));
    } else {
      // Receive in the opposite tag order: matching is per tag.
      const Message ten = co_await comm.recv(0, 10);
      order.push_back(static_cast<int>(ten.as<double>()[0]));
      const Message twenty = co_await comm.recv(0, 20);
      order.push_back(static_cast<int>(twenty.as<double>()[0]));
    }
    co_return;
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

class CommCollective : public ::testing::TestWithParam<int> {};

TEST_P(CommCollective, BarrierHoldsEveryoneUntilLastArrival) {
  const int ranks = GetParam();
  std::vector<SimTime> release_times(static_cast<std::size_t>(ranks));
  des::Simulator sim;
  Network net(sim, NetworkSpec{}, 2);
  ClusterComm world(sim, net, ranks);
  for (int r = 0; r < ranks; ++r) {
    sim.spawn([](des::Simulator& s, Communicator comm,
                 std::vector<SimTime>& out) -> des::Task<> {
      co_await s.delay(milliseconds(comm.rank() * 3.0));  // staggered
      co_await comm.barrier();
      out[static_cast<std::size_t>(comm.rank())] = s.now();
    }(sim, world.communicator(r), release_times));
  }
  sim.run();
  const SimTime last_arrival = milliseconds((ranks - 1) * 3.0);
  for (SimTime t : release_times) EXPECT_GE(t, last_arrival);
}

TEST_P(CommCollective, BcastDeliversRootPayloadToAll) {
  const int ranks = GetParam();
  std::vector<double> got(static_cast<std::size_t>(ranks), 0.0);
  const int root = ranks > 2 ? 2 : 0;
  run_ranks(2, ranks, [&, root](Communicator comm) -> des::Task<> {
    Message m;
    if (comm.rank() == root) {
      const double v = 42.25;
      m = Message::of<double>(0, {&v, 1});
    }
    const Message out = co_await comm.bcast(root, std::move(m));
    got[static_cast<std::size_t>(comm.rank())] = out.as<double>()[0];
  });
  for (double v : got) EXPECT_EQ(v, 42.25);
}

TEST_P(CommCollective, AllreduceSumsAcrossRanks) {
  const int ranks = GetParam();
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(ranks));
  run_ranks(2, ranks, [&](Communicator comm) -> des::Task<> {
    std::vector<double> mine{static_cast<double>(comm.rank()), 1.0};
    results[static_cast<std::size_t>(comm.rank())] =
        co_await comm.allreduce_sum(std::move(mine));
  });
  const double expect0 = ranks * (ranks - 1) / 2.0;
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0], expect0);
    EXPECT_DOUBLE_EQ(r[1], static_cast<double>(ranks));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommCollective,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// ---------------------------------------------------------------------------
// Cluster SPMD experiment
// ---------------------------------------------------------------------------

TEST(ClusterExperiment, AllreducedEpMatchesSequentialExactly) {
  ClusterConfig config;
  config.nodes = 2;
  config.cores_per_node = 4;
  const int m = 16;
  const ClusterResult r = run_cluster_ep(config, m);
  const kernels::EpResult expect = kernels::ep_sequential(m);
  EXPECT_EQ(r.reduced.q, expect.q);  // exact integer tallies through the
                                     // whole GPU + GVM + MPI stack
  EXPECT_EQ(r.reduced.pairs_accepted, expect.pairs_accepted);
  EXPECT_NEAR(r.reduced.sx, expect.sx, 1e-7);
  EXPECT_NEAR(r.reduced.sy, expect.sy, 1e-7);
  EXPECT_GT(r.bytes_on_wire, 0);
}

TEST(ClusterExperiment, VirtualizationWinsAtClusterScaleToo) {
  ClusterConfig virt;
  virt.nodes = 2;
  virt.cores_per_node = 8;
  ClusterConfig native = virt;
  native.virtualized = false;
  const int m = 24;
  const ClusterResult rv = run_cluster_ep(virt, m);
  const ClusterResult rn = run_cluster_ep(native, m);
  EXPECT_LT(rv.turnaround, rn.turnaround);
  EXPECT_EQ(rv.ctx_switches, 0);
  EXPECT_GT(rn.ctx_switches, 0);
  // Both compute identical physics.
  EXPECT_EQ(rv.reduced.q, rn.reduced.q);
}

TEST(ClusterExperiment, MoreNodesShortenCommputePhase) {
  ClusterConfig two;
  two.nodes = 2;
  two.cores_per_node = 4;
  ClusterConfig four = two;
  four.nodes = 4;  // same total parallelism per node count rises
  const int m = 22;
  const ClusterResult r2 = run_cluster_ep(two, m);
  const ClusterResult r4 = run_cluster_ep(four, m);
  // Twice the GPUs for the same per-rank partitioning: the compute phase
  // spreads; turnaround must not grow.
  EXPECT_LE(r4.turnaround, r2.turnaround + milliseconds(5.0));
  EXPECT_EQ(r2.reduced.q, r4.reduced.q);
}

}  // namespace
}  // namespace vgpu::cluster
