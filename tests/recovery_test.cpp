// Crash-recovery tests for the hardened live GVM: forked clients SIGKILLed
// at every protocol verb boundary on both transports, lease expiry and full
// resource reclamation, barrier wave release for the survivors, bounded
// client retry against lost messages and dead servers, graceful degradation
// to DENIED under sustained admission overload, and a randomized seed sweep
// whose failures reprint as replayable --fault-plan specs.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "ipc/shm.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

namespace vgpu::rt {
namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_rec_") + tag + "_" + std::to_string(::getpid());
}

/// Short leases so death detection fits in test time.
RtServerConfig chaos_config(const std::string& prefix, int clients,
                            ipc::TransportKind transport) {
  RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = clients;
  config.workers = 2;
  config.transport = transport;
  config.lease_timeout = std::chrono::milliseconds(250);
  config.lease_check_interval = std::chrono::milliseconds(10);
  config.release_linger = std::chrono::milliseconds(30);
  return config;
}

/// Retry options tuned for tests: fail fast against a dead server, but
/// carry enough attempts to ride out injected message loss and barrier
/// waits that only release after a lease expiry.
RtClientOptions chaos_options(ipc::TransportKind transport,
                              fault::Injector* injector = nullptr) {
  RtClientOptions options;
  options.transport = transport;
  options.op_timeout = std::chrono::milliseconds(500);
  options.max_retries = 8;
  options.fault = injector;
  return options;
}

/// One full vecadd task; returns true iff every output float is bitwise
/// equal to the serial oracle in[i] + in[n+i] computed from the same
/// deterministic per-id input (the survivors' parity check).
bool run_vecadd_client(const std::string& prefix, int id, long n,
                       RtClientOptions options) {
  auto client = RtClient::connect(prefix, id, 2 * n * 4, n * 4, options);
  if (!client.ok()) return false;
  const auto un = static_cast<std::size_t>(n);
  auto* in = reinterpret_cast<float*>(client->input().data());
  Rng rng(static_cast<std::uint64_t>(id) + 1);
  for (std::size_t i = 0; i < 2 * un; ++i) {
    in[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
  }
  auto kid = builtin_registry().id_of("vecadd");
  if (!kid.ok()) return false;
  const std::int64_t params[4] = {n, 0, 0, 0};
  if (!client->req(*kid, params).ok()) return false;
  if (!client->snd().ok()) return false;
  if (!client->str().ok()) return false;
  if (!client->wait_done().ok()) return false;
  if (!client->rcv().ok()) return false;
  const auto* out = reinterpret_cast<const float*>(client->output().data());
  for (std::size_t i = 0; i < un; ++i) {
    if (out[i] != in[i] + in[un + i]) return false;
  }
  return client->rls().ok();
}

/// Forks a victim client that SIGKILLs itself at `boundary`; returns its
/// pid. The parent must waitpid it (the server's pid probe only sees the
/// death once the zombie is reaped).
pid_t fork_victim(const std::string& prefix, int id, long n,
                  ipc::TransportKind transport, fault::Point boundary) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  fault::FaultPlan plan;
  fault::Rule rule;
  rule.point = boundary;
  rule.action = fault::Action::kKill;
  plan.add(rule);
  fault::Injector injector{std::move(plan)};
  (void)run_vecadd_client(prefix, id, n, chaos_options(transport, &injector));
  ::_exit(2);  // reached only if the kill never fired
}

constexpr fault::Point kBoundaries[] = {
    fault::Point::kClientAfterReq, fault::Point::kClientAfterSnd,
    fault::Point::kClientAfterStr, fault::Point::kClientAfterStp,
    fault::Point::kClientAfterRcv,
};

// ---------------------------------------------------------------------------
// Kill sweep: 1 victim of N=8 dies at every verb boundary, on both
// transports. The 7 survivors must complete with oracle-identical results
// (the barrier wave releases once the lease expires), and the victim's
// resources must be fully reclaimed.
// ---------------------------------------------------------------------------

class KillSweep
    : public ::testing::TestWithParam<
          std::tuple<fault::Point, ipc::TransportKind>> {};

TEST_P(KillSweep, SurvivorsCompleteAndVictimIsReclaimed) {
  const auto [boundary, transport] = GetParam();
  const std::string prefix = unique_prefix("sweep");
  constexpr int kClients = 8;
  constexpr long kN = 512;
  RtServer server(chaos_config(prefix, kClients, transport),
                  builtin_registry());
  ASSERT_TRUE(server.start().ok());

  const auto t0 = std::chrono::steady_clock::now();
  const pid_t victim =
      fork_victim(prefix, kClients - 1, kN, transport, boundary);
  ASSERT_GT(victim, 0);
  std::vector<std::thread> threads;
  std::atomic<int> survivors_ok{0};
  for (int id = 0; id + 1 < kClients; ++id) {
    threads.emplace_back([&, id] {
      if (run_vecadd_client(prefix, id, kN, chaos_options(transport))) {
        survivors_ok.fetch_add(1);
      }
    });
  }
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status)) << "victim should die by SIGKILL";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(survivors_ok.load(), kClients - 1)
      << fault::point_name(boundary) << " / " << ipc::transport_name(transport);
  // The survivors' barrier must release within the lease deadline plus
  // scheduling slack — not only eventually.
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  // Wait for the reclamation sweep to finish before stopping.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().clients_reclaimed.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  EXPECT_EQ(server.stats().leases_expired.load(), 1);
  EXPECT_EQ(server.stats().clients_reclaimed.load(), 1);
  EXPECT_EQ(server.stats().reclaimed_bytes.load(), 3 * kN * 4);
  // The victim's kernel names are gone: nothing to attach to, no leak.
  EXPECT_FALSE(ipc::SharedMemory::open(
                   prefix + "_vsm" + std::to_string(kClients - 1), 1)
                   .ok());
}

std::string sweep_name(
    const ::testing::TestParamInfo<KillSweep::ParamType>& info) {
  std::string name = fault::point_name(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name + "_" + ipc::transport_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    VerbBoundaries, KillSweep,
    ::testing::Combine(::testing::ValuesIn(kBoundaries),
                       ::testing::Values(ipc::TransportKind::kMessageQueue,
                                         ipc::TransportKind::kShmRing)),
    sweep_name);

// ---------------------------------------------------------------------------
// Arena reclamation: an arena-placed client that dies mid-protocol must
// give back its session slot AND its arena slice with the lease — at
// scale a leaked slice is a leaked segment's worth of pooled memory.
// ---------------------------------------------------------------------------

/// run_vecadd_client for arena placement: an arena client's region only
/// exists after req() granted it, so the input fill moves after REQ.
bool run_arena_vecadd_client(const std::string& prefix, int id, long n,
                             RtClientOptions options) {
  options.arena = true;
  auto client = RtClient::connect(prefix, id, 2 * n * 4, n * 4, options);
  if (!client.ok()) return false;
  auto kid = builtin_registry().id_of("vecadd");
  if (!kid.ok()) return false;
  const std::int64_t params[4] = {n, 0, 0, 0};
  if (!client->req(*kid, params).ok()) return false;
  const auto un = static_cast<std::size_t>(n);
  auto* in = reinterpret_cast<float*>(client->input().data());
  Rng rng(static_cast<std::uint64_t>(id) + 1);
  for (std::size_t i = 0; i < 2 * un; ++i) {
    in[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
  }
  if (!client->snd().ok()) return false;
  if (!client->str().ok()) return false;
  if (!client->wait_done().ok()) return false;
  if (!client->rcv().ok()) return false;
  const auto* out = reinterpret_cast<const float*>(client->output().data());
  for (std::size_t i = 0; i < un; ++i) {
    if (out[i] != in[i] + in[un + i]) return false;
  }
  return client->rls().ok();
}

/// fork_victim for the pooled-arena path: same kill plan, but the client
/// asks for arena placement (mailbox handshake, no private queues).
pid_t fork_arena_victim(const std::string& prefix, int id, long n,
                        fault::Point boundary) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  fault::FaultPlan plan;
  fault::Rule rule;
  rule.point = boundary;
  rule.action = fault::Action::kKill;
  plan.add(rule);
  fault::Injector injector{std::move(plan)};
  (void)run_arena_vecadd_client(
      prefix, id, n, chaos_options(ipc::TransportKind::kShmRing, &injector));
  ::_exit(2);  // reached only if the kill never fired
}

TEST(Recovery, ExpiredArenaLeaseRecyclesSlotAndSlice) {
  const std::string prefix = unique_prefix("arena");
  constexpr long kN = 512;
  RtServerConfig config =
      chaos_config(prefix, 2, ipc::TransportKind::kShmRing);
  config.arena_size = 1 * kMiB;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());

  const pid_t victim =
      fork_arena_victim(prefix, 1, kN, fault::Point::kClientAfterSnd);
  ASSERT_GT(victim, 0);
  const bool survivor_ok = run_arena_vecadd_client(
      prefix, 0, kN, chaos_options(ipc::TransportKind::kShmRing));
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_TRUE(survivor_ok);

  // Reclamation (victim) and linger GC (survivor's RLS) must both land:
  // every attached session's slot recycles and its slice frees.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((server.stats().clients_reclaimed.load() < 1 ||
          server.stats().slots_recycled.load() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  EXPECT_EQ(server.stats().leases_expired.load(), 1);
  EXPECT_EQ(server.stats().clients_reclaimed.load(), 1);
  EXPECT_EQ(server.stats().arena_grants.load(), 2);
  EXPECT_GE(server.stats().slots_recycled.load(), 2);
  // The pooled arena is whole again: no slice leaked with the death.
  const obs::Gauge* in_use =
      server.obs().metrics().find_gauge("arena.in_use_bytes");
  ASSERT_NE(in_use, nullptr);
  EXPECT_EQ(in_use->value(), 0.0);
}

// ---------------------------------------------------------------------------
// vmem reclamation: a SIGKILLed client's pages — device frames and
// host-ledger slots alike — must come back with its lease.
// ---------------------------------------------------------------------------

TEST(Recovery, VmemKilledClientsLedgerPagesDieWithItsLease) {
  const std::string prefix = unique_prefix("vmem");
  constexpr long kN = 2048;       // 24 KiB per client: 6 pages of 4 KiB
  constexpr Bytes kPage = 4096;
  RtServerConfig config = chaos_config(prefix, 2, ipc::TransportKind::kShmRing);
  config.sched.policy = sched::Policy::kFairShare;  // no barrier: serialize
  // Detection must wait until we reap the victim (pid probe), not trip
  // the silent deadline while the survivor is still running.
  config.lease_timeout = std::chrono::milliseconds(5000);
  config.vmem.enabled = true;
  config.vmem.page_size = kPage;
  config.vmem.device_capacity = 8 * kPage;  // holds one working set, not two
  config.vmem.host_ledger = 64 * kPage;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());

  // The victim runs its whole job first (working set device-resident) and
  // dies right after STP, leaving the pages cold but still owned.
  const pid_t victim = fork_victim(prefix, 1, kN, ipc::TransportKind::kShmRing,
                                   fault::Point::kClientAfterStp);
  ASSERT_GT(victim, 0);
  // Wait for the death but leave the zombie unreaped: the pid probe
  // cannot see it yet, so the victim's pages stay owned while the
  // survivor runs.
  siginfo_t info{};
  ASSERT_EQ(::waitid(P_PID, static_cast<id_t>(victim), &info,
                     WEXITED | WNOWAIT),
            0);
  ASSERT_EQ(info.si_code, CLD_KILLED);

  // The survivor's pin must now page the dead client's cold set out to
  // the host ledger to make room (6 + 6 pages on an 8-page device).
  EXPECT_TRUE(run_vecadd_client(prefix, 0, kN,
                                chaos_options(ipc::TransportKind::kShmRing)));

  // Reap: the next lease sweep's pid probe now reclaims the victim —
  // ledger slots and all — with its lease.
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().clients_reclaimed.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  EXPECT_EQ(server.stats().leases_expired.load(), 1);
  EXPECT_EQ(server.stats().clients_reclaimed.load(), 1);
  EXPECT_EQ(server.stats().reclaimed_bytes.load(), 3 * kN * 4);

  const vmem::Pager* pager = server.pager();
  ASSERT_NE(pager, nullptr);
  // The victim's pages really did transit the ledger (the survivor had to
  // evict at least 4 of its 6 to pin), and only the lease-expiry path can
  // free a dead client's slots — so an empty pager proves the reclaim.
  EXPECT_GE(pager->counters().page_outs, 4);
  EXPECT_EQ(pager->resident_bytes(), 0);
  EXPECT_EQ(pager->ledger_bytes(), 0);
  // Oversubscription promise: paging, never whole-client eviction.
  const obs::Counter* whole =
      server.obs().metrics().find_counter("vmem.evictions_whole_client");
  ASSERT_NE(whole, nullptr);
  EXPECT_EQ(whole->value(), 0);
}

// Two memory domains behind one front door: concurrent clients must be
// routed across both by the spread placement (sequential ones would all
// fall back to domain 0 once the counts drain), results stay oracle-exact
// regardless of which pager served them, and the pooled vmem.* aggregates
// must equal the sum of the per-device labels so the single-device
// dashboards and CI gates keep reading true numbers.
TEST(Recovery, MultiDomainSpreadRoutesClientsAndKeepsAggregatesExact) {
  const std::string prefix = unique_prefix("mdom");
  constexpr long kN = 2048;  // 24 KiB per client: 6 pages of 4 KiB
  constexpr Bytes kPage = 4096;
  constexpr int kClients = 4;
  RtServerConfig config =
      chaos_config(prefix, kClients, ipc::TransportKind::kShmRing);
  config.sched.policy = sched::Policy::kFairShare;  // no barrier
  config.vmem.enabled = true;
  config.vmem.page_size = kPage;
  config.vmem.device_capacity = 8 * kPage;  // per domain: one set, not two
  config.vmem.host_ledger = 64 * kPage;
  config.vmem.devices = 2;
  config.placement.policy = sched::PlacementPolicy::kSpread;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.memory_domains(), 2u);

  // All four in flight at once so the spread router sees live per-domain
  // client counts at REQ time.
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < kClients; ++id) {
    threads.emplace_back([&, id] {
      if (run_vecadd_client(prefix, id, kN,
                            chaos_options(ipc::TransportKind::kShmRing))) {
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  EXPECT_EQ(completed.load(), kClients);

  const obs::Registry& reg = server.obs().metrics();
  auto counter = [&](const std::string& name) {
    const obs::Counter* c = reg.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : -1;
  };
  // Both domains took placements, and every REQ was placed exactly once.
  const long placed0 = counter("rt.device0.placements");
  const long placed1 = counter("rt.device1.placements");
  EXPECT_GT(placed0, 0);
  EXPECT_GT(placed1, 0);
  EXPECT_EQ(placed0 + placed1, kClients);
  // The pooled aggregate is the exact sum of the per-device labels.
  EXPECT_EQ(counter("vmem.faults"),
            counter("vmem.device0.faults") + counter("vmem.device1.faults"));
  EXPECT_GT(counter("vmem.faults"), 0);
  // Clean teardown on every domain: all pages released, nothing stranded
  // in either ledger, and no whole-client evictions anywhere.
  for (std::size_t d = 0; d < server.memory_domains(); ++d) {
    const vmem::Pager* pager = server.pager(d);
    ASSERT_NE(pager, nullptr);
    EXPECT_EQ(pager->resident_bytes(), 0) << "domain " << d;
    EXPECT_EQ(pager->ledger_bytes(), 0) << "domain " << d;
  }
  EXPECT_EQ(counter("vmem.evictions_whole_client"), 0);
}

// ---------------------------------------------------------------------------
// Reclamation completeness
// ---------------------------------------------------------------------------

// 100 kill/reclaim iterations against one server: every iteration's vsm
// segment, response queue, quota bytes and scheduler entry must come back,
// or iteration ~8 would already fail (mq name reuse) and the quota total
// would drift.
TEST(Recovery, HundredKillIterationsLeakNothing) {
  const std::string prefix = unique_prefix("leak");
  constexpr long kN = 64;
  constexpr int kIterations = 100;
  RtServer server(
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  for (int i = 0; i < kIterations; ++i) {
    // Alternate the death point: before the barrier and after the grant.
    const fault::Point boundary = (i % 2 == 0)
                                      ? fault::Point::kClientAfterSnd
                                      : fault::Point::kClientAfterStr;
    const pid_t victim = fork_victim(
        prefix, 0, kN, ipc::TransportKind::kMessageQueue, boundary);
    ASSERT_GT(victim, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status)) << "iteration " << i;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().clients_reclaimed.load() < i + 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.stats().clients_reclaimed.load(), i + 1)
        << "iteration " << i << " never reclaimed";
    ASSERT_FALSE(ipc::SharedMemory::open(prefix + "_vsm0", 1).ok())
        << "vsm leaked at iteration " << i;
  }
  // A healthy client on the same id works after 100 reclamations — queues,
  // segments and quota are all genuinely reusable, not half-freed.
  EXPECT_TRUE(run_vecadd_client(
      prefix, 0, kN, chaos_options(ipc::TransportKind::kMessageQueue)));
  server.stop();
  EXPECT_EQ(server.stats().clients_reclaimed.load(), kIterations);
  EXPECT_EQ(server.stats().reclaimed_bytes.load(), kIterations * 3 * kN * 4);
  EXPECT_EQ(server.stats().leases_expired.load(), kIterations);
}

// A silent in-process client (alive pid, so the probe passes) must expire
// via the deadline path, record a kLeaseExpiry span, and be reclaimed.
TEST(Recovery, SilentClientExpiresByDeadlineWithSpan) {
  const std::string prefix = unique_prefix("silent");
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.obs.tracing = true;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  {
    auto client = RtClient::connect(
        prefix, 0, 64, 64, chaos_options(ipc::TransportKind::kMessageQueue));
    ASSERT_TRUE(client.ok());
    auto kid = builtin_registry().id_of("vecadd");
    const std::int64_t params[4] = {8, 0, 0, 0};
    ASSERT_TRUE(client->req(*kid, params).ok());
    // Go silent: no SND/STR, nothing queued or running, past the lease.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().leases_expired.load() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  server.stop();
  EXPECT_EQ(server.stats().leases_expired.load(), 1);
  EXPECT_EQ(server.stats().clients_reclaimed.load(), 1);
  bool found = false;
  for (const obs::SpanRecord& span : server.obs().tracer().collect()) {
    if (span.phase == obs::Phase::kLeaseExpiry && span.lane == 0) {
      found = true;
      EXPECT_GE(span.end - span.begin,
                std::chrono::nanoseconds(
                    std::chrono::milliseconds(250)).count());
    }
  }
  EXPECT_TRUE(found) << "no kLeaseExpiry span recorded";
}

// A client with work queued or running is exempt from deadline expiry —
// only true silence (or a dead pid) expires a lease.
TEST(Recovery, BusyClientIsNotExpiredByDeadline) {
  const std::string prefix = unique_prefix("busy");
  RtServer server(
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto client = RtClient::connect(
      prefix, 0, 0, 0, chaos_options(ipc::TransportKind::kMessageQueue));
  ASSERT_TRUE(client.ok());
  auto kid = builtin_registry().id_of("sleep_ms");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {600, 0, 0, 0};  // >> 250 ms lease
  ASSERT_TRUE(client->req(*kid, params).ok());
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  ASSERT_TRUE(client->wait_done(std::chrono::microseconds(2000)).ok());
  ASSERT_TRUE(client->rls().ok());
  server.stop();
  EXPECT_EQ(server.stats().leases_expired.load(), 0);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
}

// ---------------------------------------------------------------------------
// Client-side timeout and retry
// ---------------------------------------------------------------------------

// The paper client blocked forever when the server died mid-protocol; the
// retry layer must surface kTimedOut instead, on both transports.
TEST(Recovery, DeadServerSurfacesTimedOutNotHang) {
  for (const auto transport :
       {ipc::TransportKind::kMessageQueue, ipc::TransportKind::kShmRing}) {
    const std::string prefix = unique_prefix("deadsrv");
    RtServer server(chaos_config(prefix, 1, transport), builtin_registry());
    ASSERT_TRUE(server.start().ok());
    RtClientOptions options = chaos_options(transport);
    options.op_timeout = std::chrono::milliseconds(50);
    options.max_retries = 2;
    auto client = RtClient::connect(prefix, 0, 64, 64, options);
    ASSERT_TRUE(client.ok());
    auto kid = builtin_registry().id_of("vecadd");
    const std::int64_t params[4] = {8, 0, 0, 0};
    ASSERT_TRUE(client->req(*kid, params).ok());
    server.stop();  // server dies between REQ and SND
    const Status st = client->snd();
    EXPECT_FALSE(st.ok()) << ipc::transport_name(transport);
    EXPECT_EQ(st.code(), ErrorCode::kTimedOut)
        << ipc::transport_name(transport) << ": " << st.to_string();
  }
}

// wait_done() with a done_timeout bounds STP polling even while the server
// keeps answering kWait (job legitimately still running).
TEST(Recovery, WaitDoneHonorsDoneTimeout) {
  const std::string prefix = unique_prefix("donet");
  RtServer server(
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options = chaos_options(ipc::TransportKind::kMessageQueue);
  options.done_timeout = std::chrono::milliseconds(50);
  auto client = RtClient::connect(prefix, 0, 0, 0, options);
  ASSERT_TRUE(client.ok());
  auto kid = builtin_registry().id_of("sleep_ms");
  const std::int64_t params[4] = {400, 0, 0, 0};
  ASSERT_TRUE(client->req(*kid, params).ok());
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  const Status st = client->wait_done(std::chrono::microseconds(1000));
  EXPECT_EQ(st.code(), ErrorCode::kTimedOut);
  // Let the job drain so stop() tears down cleanly.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  server.stop();
}

// Injected message loss on the control plane: dropped requests are resent,
// dropped responses are replayed from the server's recorded answer, and
// the result still matches the oracle bitwise.
TEST(Recovery, ClientRetriesAbsorbDroppedMessages) {
  for (const auto transport :
       {ipc::TransportKind::kMessageQueue, ipc::TransportKind::kShmRing}) {
    const std::string prefix = unique_prefix("drop");
    // The retry cadence must outpace the lease: a client whose sends are
    // being swallowed looks silent to the server, and a lease shorter
    // than op_timeout x drops would (correctly) expire it.
    RtServerConfig config = chaos_config(prefix, 1, transport);
    config.lease_timeout = std::chrono::milliseconds(2000);
    RtServer server(config, builtin_registry());
    ASSERT_TRUE(server.start().ok());
    fault::Injector injector{
        fault::FaultPlan::parse("seed=9,drop@ctrl.send:limit=2,"
                                "drop@ctrl.recv:after=4:limit=1")
            .value()};
    RtClientOptions options = chaos_options(transport, &injector);
    options.op_timeout = std::chrono::milliseconds(100);
    EXPECT_TRUE(run_vecadd_client(prefix, 0, 256, options))
        << ipc::transport_name(transport);
    server.stop();
    EXPECT_GT(injector.fired(fault::Action::kDrop), 0);
  }
}

// Duplicated requests must be absorbed by seq-replay, not re-executed:
// the verb runs once, the duplicate gets the recorded response.
TEST(Recovery, DuplicateRequestsAreAbsorbedByReplay) {
  const std::string prefix = unique_prefix("dup");
  RtServer server(
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  fault::Injector injector{
      fault::FaultPlan::parse("seed=9,dup@ctrl.send:limit=3").value()};
  EXPECT_TRUE(run_vecadd_client(
      prefix, 0, 256,
      chaos_options(ipc::TransportKind::kMessageQueue, &injector)));
  server.stop();
  EXPECT_GE(server.stats().duplicates_absorbed.load(), 1);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);  // STR ran exactly once
}

// Server-side loss: a dropped response forces the client's same-seq retry
// through the replay path; a dropped incoming request is simply resent.
TEST(Recovery, ServerSideDropsAreSurvivable) {
  const std::string prefix = unique_prefix("sdrop");
  fault::Injector server_faults{
      fault::FaultPlan::parse("seed=3,drop@server.respond:limit=1,"
                              "drop@server.handle:after=2:limit=1")
          .value()};
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.lease_timeout = std::chrono::milliseconds(2000);
  config.fault = &server_faults;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options = chaos_options(ipc::TransportKind::kMessageQueue);
  options.op_timeout = std::chrono::milliseconds(100);
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 256, options));
  server.stop();
  EXPECT_GT(server_faults.fired(fault::Action::kDrop), 0);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
}

// An injected exec.shard stall (straggler SM) slows a launch but must not
// change its result.
TEST(Recovery, ExecShardStallOnlySlowsTheJob) {
  const std::string prefix = unique_prefix("stall");
  fault::Injector server_faults{
      fault::FaultPlan::parse("seed=3,stall@exec.shard:p=0.5:delay_us=200")
          .value()};
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.exec = ExecMode::kSharded;
  config.fault = &server_faults;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(run_vecadd_client(
      prefix, 0, 8192, chaos_options(ipc::TransportKind::kMessageQueue)));
  server.stop();
  EXPECT_GT(server_faults.occurrences(fault::Point::kExecShard), 0);
}

// ---------------------------------------------------------------------------
// Overload degradation
// ---------------------------------------------------------------------------

// Under sustained admission backpressure the server answers kWait a bounded
// number of times, then degrades to a firm DENIED — and recovers once the
// resident releases.
TEST(Recovery, SustainedOverloadDegradesToDeniedThenRecovers) {
  const std::string prefix = unique_prefix("deny");
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.total_capacity = 1024;
  config.deny_after_backpressure = 3;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto kid = builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {8, 0, 0, 0};

  // Resident holds 96 bytes of the 1024-byte capacity...
  auto resident = RtClient::connect(
      prefix, 0, 64, 32, chaos_options(ipc::TransportKind::kMessageQueue));
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(resident->req(*kid, params).ok());
  // ...so a 1000-byte ask backpressures (fits capacity, not free space),
  // and after deny_after_backpressure strikes turns into DENIED.
  auto big = RtClient::connect(
      prefix, 1, 500, 500, chaos_options(ipc::TransportKind::kMessageQueue));
  ASSERT_TRUE(big.ok());
  const Status denied = big->req(*kid, params);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), ErrorCode::kInternal);  // DENIED, not a timeout
  EXPECT_GE(server.stats().backpressure.load(), 2);
  EXPECT_EQ(server.stats().denials.load(), 1);

  // Recovery: once the resident releases, the same ask is admitted.
  ASSERT_TRUE(resident->rls().ok());
  EXPECT_TRUE(big->req(*kid, params).ok());
  EXPECT_TRUE(big->rls().ok());
  server.stop();
}

// Asks that exceed total capacity outright are permanently rejected (no
// backpressure loop), and asks that fit are unaffected by the denial path.
TEST(Recovery, OversizedAskRejectedImmediately) {
  const std::string prefix = unique_prefix("oversz");
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.total_capacity = 1024;  // the healthy 768-byte ask below fits
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto kid = builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {8, 0, 0, 0};
  auto big = RtClient::connect(
      prefix, 0, 1024, 1024, chaos_options(ipc::TransportKind::kMessageQueue));
  ASSERT_TRUE(big.ok());
  const Status st = big->req(*kid, params);
  EXPECT_EQ(st.code(), ErrorCode::kInternal);
  EXPECT_EQ(server.stats().backpressure.load(), 0);
  EXPECT_EQ(server.stats().denials.load(), 1);
  EXPECT_TRUE(run_vecadd_client(
      prefix, 1, 64, chaos_options(ipc::TransportKind::kMessageQueue)));
  server.stop();
}

// Injected allocation failure at REQ binding time surfaces as a rejection.
TEST(Recovery, InjectedAllocationFailureRejectsReq) {
  const std::string prefix = unique_prefix("alloc");
  fault::Injector server_faults{
      fault::FaultPlan::parse("seed=0,fail@device.alloc:limit=1").value()};
  RtServerConfig config =
      chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue);
  config.fault = &server_faults;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto kid = builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {8, 0, 0, 0};
  auto client = RtClient::connect(
      prefix, 0, 64, 64, chaos_options(ipc::TransportKind::kMessageQueue));
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->req(*kid, params).code(), ErrorCode::kInternal);
  // The fault window was limit=1: the retry attaches cleanly.
  EXPECT_TRUE(client->req(*kid, params).ok());
  EXPECT_TRUE(client->rls().ok());
  server.stop();
  EXPECT_EQ(server_faults.fired(fault::Action::kFail), 1);
}

// ---------------------------------------------------------------------------
// Randomized seed sweep (the chaos property test)
// ---------------------------------------------------------------------------

/// One randomized chaos run: 7 surviving thread clients under a seeded
/// drop/delay/dup plan, plus 1 forked victim whose kill fires with p=0.6
/// at a seed-chosen verb boundary. Returns false (and prints the replay
/// specs) on any violation.
bool run_chaos_seed(std::uint64_t seed, long* jobs_run_out) {
  const std::string prefix =
      unique_prefix(("seed" + std::to_string(seed)).c_str());
  const auto transport = (seed % 2 == 0) ? ipc::TransportKind::kMessageQueue
                                         : ipc::TransportKind::kShmRing;
  constexpr int kClients = 8;
  constexpr long kN = 128;
  // Lease comfortably above the survivors' retry cadence (op_timeout
  // below): injected send-drops must read as retries, not silence. Victim
  // death detection stays fast either way — it rides the pid probe.
  RtServerConfig config = chaos_config(prefix, kClients, transport);
  config.lease_timeout = std::chrono::milliseconds(1000);
  RtServer server(config, builtin_registry());
  if (!server.start().ok()) return false;

  // Survivors share one injector: a mild mix of loss, latency and
  // duplication on the control plane.
  const std::string survivor_spec =
      "seed=" + std::to_string(seed) +
      ",drop@ctrl.send:p=0.1,dup@ctrl.send:p=0.1,"
      "delay@ctrl.recv:p=0.2:delay_us=300,drop@ctrl.recv:p=0.05";
  const std::string victim_spec =
      "seed=" + std::to_string(seed) + ",kill@" +
      fault::point_name(
          kBoundaries[seed % (sizeof(kBoundaries) / sizeof(kBoundaries[0]))]) +
      ":p=0.6:limit=1";
  auto survivor_plan = fault::FaultPlan::parse(survivor_spec);
  auto victim_plan = fault::FaultPlan::parse(victim_spec);
  if (!survivor_plan.ok() || !victim_plan.ok()) return false;
  fault::Injector injector{*survivor_plan};

  const pid_t victim = ::fork();
  if (victim == 0) {
    fault::Injector victim_injector{*victim_plan};
    const bool ok = run_vecadd_client(
        prefix, kClients - 1, kN, chaos_options(transport, &victim_injector));
    ::_exit(ok ? 0 : 2);
  }
  if (victim < 0) return false;
  RtClientOptions survivor_options = chaos_options(transport, &injector);
  survivor_options.op_timeout = std::chrono::milliseconds(100);
  std::vector<std::thread> threads;
  std::atomic<int> survivors_ok{0};
  for (int id = 0; id + 1 < kClients; ++id) {
    threads.emplace_back([&, id] {
      if (run_vecadd_client(prefix, id, kN, survivor_options)) {
        survivors_ok.fetch_add(1);
      }
    });
  }
  int status = 0;
  const bool reaped = ::waitpid(victim, &status, 0) == victim;
  for (auto& t : threads) t.join();
  // Let any pending reclamation settle before reading counters.
  const bool victim_died = reaped && WIFSIGNALED(status);
  if (victim_died) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().clients_reclaimed.load() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  server.stop();
  *jobs_run_out = server.stats().jobs_run.load();

  bool ok = true;
  if (survivors_ok.load() != kClients - 1) ok = false;
  if (!reaped) ok = false;
  // A victim that died must be detected and reclaimed; one that survived
  // must have completed the protocol cleanly (exit 0).
  if (victim_died && server.stats().clients_reclaimed.load() != 1) ok = false;
  if (reaped && !victim_died && WEXITSTATUS(status) != 0) ok = false;
  // Turnaround accounting: every survivor ran exactly one job; the victim
  // contributes at most one more.
  if (*jobs_run_out < kClients - 1 || *jobs_run_out > kClients) ok = false;
  if (!ok) {
    ADD_FAILURE() << "chaos seed " << seed << " failed (survivors="
                  << survivors_ok.load() << "/" << kClients - 1
                  << ", jobs_run=" << *jobs_run_out
                  << ", reclaimed=" << server.stats().clients_reclaimed.load()
                  << ")\n  replay survivors: --fault-plan=" << survivor_spec
                  << "\n  replay victim:    --fault-plan=" << victim_spec;
  }
  return ok;
}

void run_chaos_shard(std::uint64_t begin, std::uint64_t end) {
  long cumulative = 0;
  for (std::uint64_t seed = begin; seed < end; ++seed) {
    long jobs_run = 0;
    if (!run_chaos_seed(seed, &jobs_run)) return;  // failure already logged
    // Monotone turnaround: each seed's completed-job counter adds to the
    // running total; a lost wave would show up as a flat step.
    const long next = cumulative + jobs_run;
    ASSERT_GT(next, cumulative) << "seed " << seed;
    cumulative = next;
  }
}

// ---------------------------------------------------------------------------
// Graph replay vs. client death: a client uploads a multi-node graph, fires
// a replay whose sleep nodes outlive its own lease, and SIGKILLs itself
// mid-replay. The cached graph must die with the lease (no leaked nodes)
// and the slot must recycle cleanly for a fresh client under the same id.
// ---------------------------------------------------------------------------

TEST(GraphRecovery, KillMidReplayReclaimsCachedGraphAndRecyclesSlot) {
  const std::string prefix = unique_prefix("graphkill");
  RtServer server(chaos_config(prefix, 1, ipc::TransportKind::kMessageQueue),
                  builtin_registry());
  ASSERT_TRUE(server.start().ok());

  const pid_t victim = ::fork();
  if (victim == 0) {
    auto options = chaos_options(ipc::TransportKind::kMessageQueue);
    auto client = RtClient::connect(prefix, 0, 1024, 64, options);
    if (!client.ok()) ::_exit(2);
    auto sleep_id = builtin_registry().id_of("sleep_ms");
    if (!sleep_id.ok()) ::_exit(2);
    const std::int64_t params[4] = {200, 0, 0, 0};
    if (!client->req(*sleep_id, params).ok()) ::_exit(2);
    // Three chained 200 ms sleep nodes: the replay runs long past both
    // the kill below and the 250 ms lease.
    if (!client->begin_capture().ok()) ::_exit(2);
    int prev = -1;
    for (int i = 0; i < 3; ++i) {
      auto node = client->capture_kernel(
          *sleep_id, params, 0, 0, 0, 0,
          prev >= 0 ? std::span<const int>(&prev, 1) : std::span<const int>());
      if (!node.ok()) ::_exit(2);
      prev = *node;
    }
    if (!client->end_capture().ok()) ::_exit(2);
    if (!client->upload_graph(1).ok()) ::_exit(2);
    std::thread([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      ::raise(SIGKILL);
    }).detach();
    (void)client->launch_graph(1);  // dies mid-replay
    ::_exit(2);                     // reached only if the kill never fired
  }
  ASSERT_GT(victim, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status)) << "victim must die by SIGKILL";

  // The replay outlives the lease; reclamation lands once the job drains.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((server.stats().graphs_reclaimed.load() < 1 ||
          server.stats().graph_nodes_live.load() != 0 ||
          server.stats().clients_reclaimed.load() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.stats().graphs_cached.load(), 1);
  EXPECT_GE(server.stats().graphs_reclaimed.load(), 1);
  EXPECT_EQ(server.stats().graph_nodes_live.load(), 0) << "leaked graph nodes";
  EXPECT_GE(server.stats().clients_reclaimed.load(), 1);

  // The slot recycles clean: a fresh client under the same id completes a
  // full task with correct results.
  EXPECT_TRUE(run_vecadd_client(
      prefix, 0, 512, chaos_options(ipc::TransportKind::kMessageQueue)));
  server.stop();
}

TEST(ChaosSweep, Seeds0To49) { run_chaos_shard(0, 50); }
TEST(ChaosSweep, Seeds50To99) { run_chaos_shard(50, 100); }
TEST(ChaosSweep, Seeds100To149) { run_chaos_shard(100, 150); }
TEST(ChaosSweep, Seeds150To199) { run_chaos_shard(150, 200); }

}  // namespace
}  // namespace vgpu::rt
