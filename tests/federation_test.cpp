// Federation tests: load-digest exchange over cluster::Communicator,
// cross-node client migration with functional verification, the
// no-exchange control, and the node-scaling trend (Li et al.,
// arXiv:1511.07658).
#include <gtest/gtest.h>

#include "cluster/federation.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::cluster {
namespace {

gpu::DeviceSpec fast_c2070() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(50.0);
  spec.ctx_create_time = milliseconds(5.0);
  spec.ctx_switch_time = milliseconds(20.0);
  return spec;
}

FederationConfig fast_config(int nodes, bool exchange) {
  FederationConfig config;
  config.nodes = nodes;
  config.gpu = fast_c2070();
  config.exchange = exchange;
  config.digest_interval = microseconds(200.0);
  config.migrate_min_gap = 2;
  return config;
}

/// A skewed population: every client homes on node 0 with multi-round
/// sessions, so only exchange can put the other nodes to work.
std::vector<FederatedClientSpec> skewed_population(int count, int rounds) {
  auto w = workloads::npb_ep(18);
  std::vector<FederatedClientSpec> clients;
  for (int i = 0; i < count; ++i) {
    FederatedClientSpec spec;
    spec.work.plan = w.plan;
    spec.work.rounds = rounds;
    spec.work.sessions = 2;
    spec.work.think = microseconds(100.0);
    spec.home_node = 0;
    clients.push_back(std::move(spec));
  }
  return clients;
}

TEST(Federation, ExchangeRebalancesASkewedPopulation) {
  const auto clients = skewed_population(/*count=*/8, /*rounds=*/4);
  auto with = run_federated(fast_config(2, /*exchange=*/true), clients);
  auto without = run_federated(fast_config(2, /*exchange=*/false), clients);

  // Digests flowed and clients moved off the overloaded node.
  EXPECT_GT(with.digest_rounds, 0);
  EXPECT_GT(with.cross_node_migrations, 0);
  EXPECT_GT(with.migrated_bytes, 0);
  EXPECT_GT(with.sessions_per_node[1], 0);
  // The working sets really crossed the modeled fabric.
  EXPECT_GE(with.bytes_on_wire, with.migrated_bytes);
  // Rebalancing beats leaving node 1 idle.
  EXPECT_LT(with.makespan, without.makespan);
  // Clean drain on every node either way.
  for (Bytes residual : with.residual_node_bytes) EXPECT_EQ(residual, 0);
  for (Bytes residual : without.residual_node_bytes) EXPECT_EQ(residual, 0);
}

TEST(Federation, NoExchangeKeepsEveryClientAtHome) {
  auto r = run_federated(fast_config(2, /*exchange=*/false),
                         skewed_population(6, 3));
  EXPECT_EQ(r.digest_rounds, 0);
  EXPECT_EQ(r.cross_node_migrations, 0);
  EXPECT_EQ(r.migrated_bytes, 0);
  EXPECT_EQ(r.sessions_per_node[1], 0);
  EXPECT_EQ(r.session_seconds.size(), 12u);
}

TEST(Federation, MigratedClientsProduceCorrectResults) {
  // Functional workloads homed on node 0; the digest loop pushes some to
  // node 1 mid-workload and every verify() must still hold.
  std::vector<workloads::FunctionalWorkload> instances;
  std::vector<FederatedClientSpec> clients;
  for (int i = 0; i < 6; ++i) {
    instances.push_back(workloads::functional_vecadd(4096));
    FederatedClientSpec spec;
    spec.work.plan = instances.back().plan;
    spec.work.rounds = 4;  // round boundaries for directives to fire at
    spec.home_node = 0;
    clients.push_back(std::move(spec));
  }
  FederationConfig config = fast_config(2, /*exchange=*/true);
  config.digest_interval = microseconds(50.0);
  config.migrate_min_gap = 1;
  auto r = run_federated(config, clients);
  EXPECT_GT(r.cross_node_migrations, 0);
  for (auto& w : instances) {
    EXPECT_TRUE(w.verify()) << "client result diverged after federation";
  }
  for (Bytes residual : r.residual_node_bytes) EXPECT_EQ(residual, 0);
}

TEST(Federation, MakespanShrinksWithNodeCount) {
  // Li et al.'s scaling trend: the same population over more federated
  // nodes finishes sooner (sublinearly — the fabric and digest cadence
  // are not free). Needs a device-saturating workload (matmul's grid
  // fills the SMs; EP's 4-block grid would let one device absorb
  // everyone concurrently) and enough sessions for one-move-per-digest
  // rebalancing to spread a 12-client pile across four nodes.
  auto w = workloads::matmul(256);
  std::vector<FederatedClientSpec> clients;
  for (int i = 0; i < 12; ++i) {
    FederatedClientSpec spec;
    spec.work.plan = w.plan;
    spec.work.rounds = 2;
    spec.work.sessions = 5;
    spec.work.think = microseconds(100.0);
    spec.home_node = 0;
    clients.push_back(std::move(spec));
  }
  SimDuration previous = 0;
  for (int nodes : {1, 2, 4}) {
    FederationConfig config = fast_config(nodes, /*exchange=*/true);
    config.digest_interval = microseconds(100.0);
    config.migrate_min_gap = 1;
    auto r = run_federated(config, clients);
    if (previous != 0) EXPECT_LT(r.makespan, previous) << nodes << " nodes";
    previous = r.makespan;
  }
}

}  // namespace
}  // namespace vgpu::cluster
