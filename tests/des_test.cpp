// Unit tests for the discrete-event engine: scheduling order, coroutine
// tasks, channels, semaphores, barriers, events, determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "des/task.hpp"

namespace vgpu::des {
namespace {

TEST(Sim, TimeAdvancesThroughDelays) {
  Simulator sim;
  std::vector<SimTime> stamps;
  sim.spawn([](Simulator& s, std::vector<SimTime>& out) -> Task<> {
    out.push_back(s.now());
    co_await s.delay(10);
    out.push_back(s.now());
    co_await s.delay(5);
    out.push_back(s.now());
  }(sim, stamps));
  const SimTime end = sim.run();
  EXPECT_EQ(end, 15);
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, 10, 15}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Sim, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.call_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sim, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.call_at(10, [&] { ++fired; });
  sim.call_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Sim, NestedTasksReturnValues) {
  Simulator sim;
  int result = 0;
  sim.spawn([](Simulator& s, int& out) -> Task<> {
    auto child = [](Simulator& s2, int x) -> Task<int> {
      co_await s2.delay(3);
      co_return x * 2;
    };
    const int a = co_await child(s, 21);
    const int b = co_await child(s, a);
    out = b;
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 84);
  EXPECT_EQ(sim.now(), 6);
}

TEST(Sim, ManyProcessesAllComplete) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    sim.spawn([](Simulator& s, int& d, int delay) -> Task<> {
      co_await s.delay(delay);
      ++d;
    }(sim, done, i % 17));
  }
  sim.run();
  EXPECT_EQ(done, 200);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Sim, DeterministicEventCount) {
  auto run_once = [] {
    Simulator sim;
    Channel<int> ch(sim);
    for (int i = 0; i < 10; ++i) {
      sim.spawn([](Simulator& s, Channel<int>& c, int i) -> Task<> {
        co_await s.delay(i * 7 % 13);
        c.send(i);
        co_await s.yield();
      }(sim, ch, i));
    }
    sim.spawn([](Simulator& s, Channel<int>& c) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        (void)co_await c.receive();
        co_await s.delay(1);
      }
    }(sim, ch));
    sim.run();
    return sim.events_dispatched();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Sim, DestructorCleansUpSuspendedProcesses) {
  // A process suspended forever must be destroyed without leaks or crashes.
  auto sim = std::make_unique<Simulator>();
  auto* ch = new Channel<int>(*sim);
  sim->spawn([](Channel<int>& c) -> Task<> {
    (void)co_await c.receive();  // never satisfied
  }(*ch));
  sim->run();
  EXPECT_EQ(sim->live_processes(), 1u);
  sim.reset();  // must not crash
  delete ch;
}

TEST(Channel, BufferedSendThenReceive) {
  Simulator sim;
  Channel<std::string> ch(sim);
  ch.send("a");
  ch.send("b");
  std::vector<std::string> got;
  sim.spawn([](Channel<std::string>& c, std::vector<std::string>& out)
                -> Task<> {
    out.push_back(co_await c.receive());
    out.push_back(co_await c.receive());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(Channel, BlockedReceiverWakesOnSend) {
  Simulator sim;
  Channel<int> ch(sim);
  SimTime recv_time = -1;
  sim.spawn([](Channel<int>& c, Simulator& s, SimTime& t) -> Task<> {
    (void)co_await c.receive();
    t = s.now();
  }(ch, sim, recv_time));
  sim.spawn([](Channel<int>& c, Simulator& s) -> Task<> {
    co_await s.delay(42);
    c.send(1);
  }(ch, sim));
  sim.run();
  EXPECT_EQ(recv_time, 42);
}

TEST(Channel, FifoAmongMultipleReceivers) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 3; ++r) {
    sim.spawn([](Channel<int>& c, std::vector<std::pair<int, int>>& out,
                 int r) -> Task<> {
      const int v = co_await c.receive();
      out.emplace_back(r, v);
    }(ch, got, r));
  }
  sim.spawn([](Channel<int>& c, Simulator& s) -> Task<> {
    co_await s.delay(1);
    c.send(100);
    c.send(200);
    c.send(300);
  }(ch, sim));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  // Receivers registered 0,1,2 get values in FIFO order.
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Channel, TryReceive) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(5);
  auto v = ch.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int active = 0, peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulator& s, Semaphore& sm, int& act, int& pk) -> Task<> {
      co_await sm.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await s.delay(10);
      --act;
      sm.release();
    }(sim, sem, active, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sim.now(), 30);  // 6 jobs, 2 at a time, 10 each
}

TEST(Semaphore, FifoWakeOrder) {
  Simulator sim;
  Semaphore sem(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Semaphore& sm, std::vector<int>& out, int i) -> Task<> {
      co_await sm.acquire();
      out.push_back(i);
    }(sem, order, i));
  }
  sim.spawn([](Simulator& s, Semaphore& sm) -> Task<> {
    co_await s.delay(5);
    sm.release(4);
  }(sim, sem));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Barrier, ReleasesAllPartiesTogether) {
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, Barrier& b, std::vector<SimTime>& out,
                 int i) -> Task<> {
      co_await s.delay(i * 10);  // staggered arrivals at 0, 10, 20
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }(sim, bar, times, i));
  }
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  for (auto t : times) EXPECT_EQ(t, 20);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Simulator sim;
  Barrier bar(sim, 2);
  std::vector<SimTime> times;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulator& s, Barrier& b, std::vector<SimTime>& out,
                 int i) -> Task<> {
      for (int round = 0; round < 3; ++round) {
        co_await s.delay(i == 0 ? 1 : 3);
        co_await b.arrive_and_wait();
        if (i == 0) out.push_back(s.now());
      }
    }(sim, bar, times, i));
  }
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  // Every round completes when the slower party (3 ticks) arrives.
  EXPECT_EQ(times[0], 3);
  EXPECT_EQ(times[1], 6);
  EXPECT_EQ(times[2], 9);
}

TEST(OneShotEvent, WaitBeforeAndAfterSet) {
  Simulator sim;
  OneShotEvent ev(sim);
  std::vector<SimTime> times;
  sim.spawn([](Simulator& s, OneShotEvent& e,
               std::vector<SimTime>& out) -> Task<> {
    co_await e.wait();  // waits for set at t=7
    out.push_back(s.now());
    co_await e.wait();  // already set: immediate
    out.push_back(s.now());
  }(sim, ev, times));
  sim.spawn([](Simulator& s, OneShotEvent& e) -> Task<> {
    co_await s.delay(7);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{7, 7}));
}



TEST(WhenAll, CompletesWhenSlowestFinishes) {
  Simulator sim;
  int done = 0;
  SimTime finished = -1;
  sim.spawn([](Simulator& s, int& done, SimTime& finished) -> Task<> {
    std::vector<Task<>> tasks;
    for (int delay : {5, 30, 10}) {
      tasks.push_back([](Simulator& s2, int& d, int delay) -> Task<> {
        co_await s2.delay(delay);
        ++d;
      }(s, done, delay));
    }
    co_await when_all(s, std::move(tasks));
    finished = s.now();
  }(sim, done, finished));
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(finished, 30);
}

TEST(WhenAll, EmptySetCompletesImmediately) {
  Simulator sim;
  SimTime finished = -1;
  sim.spawn([](Simulator& s, SimTime& finished) -> Task<> {
    co_await when_all(s, {});
    finished = s.now();
  }(sim, finished));
  sim.run();
  EXPECT_EQ(finished, 0);
}

TEST(OneShotEvent, WaitForReturnsTrueWhenEventWins) {
  Simulator sim;
  OneShotEvent ev(sim);
  bool fired = false;
  SimTime when = -1;
  sim.spawn([](Simulator& s, OneShotEvent& e, bool& fired,
               SimTime& when) -> Task<> {
    fired = co_await e.wait_for(100);
    when = s.now();
  }(sim, ev, fired, when));
  sim.call_at(30, [&ev] { ev.set(); });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(when, 30);
}

TEST(OneShotEvent, WaitForReturnsFalseOnTimeout) {
  Simulator sim;
  OneShotEvent ev(sim);
  bool fired = true;
  SimTime when = -1;
  sim.spawn([](Simulator& s, OneShotEvent& e, bool& fired,
               SimTime& when) -> Task<> {
    fired = co_await e.wait_for(100);
    when = s.now();
  }(sim, ev, fired, when));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(when, 100);
}

TEST(OneShotEvent, LateSetAfterTimeoutDoesNotResumeTwice) {
  Simulator sim;
  OneShotEvent ev(sim);
  int resumes = 0;
  sim.spawn([](OneShotEvent& e, int& resumes) -> Task<> {
    (void)co_await e.wait_for(10);
    ++resumes;
  }(ev, resumes));
  sim.call_at(500, [&ev] { ev.set(); });  // long after the timeout
  sim.run();
  EXPECT_EQ(resumes, 1);
}

TEST(OneShotEvent, WaitForOnAlreadySetEventIsImmediate) {
  Simulator sim;
  OneShotEvent ev(sim);
  ev.set();
  bool fired = false;
  SimTime when = -1;
  sim.spawn([](Simulator& s, OneShotEvent& e, bool& fired,
               SimTime& when) -> Task<> {
    fired = co_await e.wait_for(100);
    when = s.now();
  }(sim, ev, fired, when));
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(when, 0);
}

TEST(OneShotEvent, MixedWaitersAllServedOnSet) {
  Simulator sim;
  OneShotEvent ev(sim);
  int plain = 0, timed_true = 0, timed_false = 0;
  sim.spawn([](OneShotEvent& e, int& plain) -> Task<> {
    co_await e.wait();
    ++plain;
  }(ev, plain));
  sim.spawn([](OneShotEvent& e, int& t, int& f) -> Task<> {
    (co_await e.wait_for(1000)) ? ++t : ++f;
  }(ev, timed_true, timed_false));
  sim.spawn([](OneShotEvent& e, int& t, int& f) -> Task<> {
    (co_await e.wait_for(5)) ? ++t : ++f;  // times out before set at 50
  }(ev, timed_true, timed_false));
  sim.call_at(50, [&ev] { ev.set(); });
  sim.run();
  EXPECT_EQ(plain, 1);
  EXPECT_EQ(timed_true, 1);
  EXPECT_EQ(timed_false, 1);
}

TEST(CountdownLatch, ReleasesAtZero) {
  Simulator sim;
  CountdownLatch latch(sim, 3);
  SimTime released = -1;
  sim.spawn([](Simulator& s, CountdownLatch& l, SimTime& t) -> Task<> {
    co_await l.wait();
    t = s.now();
  }(sim, latch, released));
  for (int i = 1; i <= 3; ++i) {
    sim.call_at(i * 10, [&latch] { latch.count_down(); });
  }
  sim.run();
  EXPECT_EQ(released, 30);
}

TEST(CountdownLatch, ZeroCountIsImmediatelyOpen) {
  Simulator sim;
  CountdownLatch latch(sim, 0);
  bool passed = false;
  sim.spawn([](CountdownLatch& l, bool& p) -> Task<> {
    co_await l.wait();
    p = true;
  }(latch, passed));
  sim.run();
  EXPECT_TRUE(passed);
}

}  // namespace
}  // namespace vgpu::des
