// Integration tests for the live GVM runtime: real POSIX message queues and
// shared memory, a server thread with a worker pool, and concurrent clients
// running the full REQ/SND/STR/STP/RCV/RLS protocol with functional kernels.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kernels/ep.hpp"
#include "kernels/mg.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"
#include "rt/thread_pool.hpp"

namespace vgpu::rt {
namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_rt_") + tag + "_" + std::to_string(::getpid());
}

RtServerConfig server_config(
    const std::string& prefix, int clients, int workers,
    ipc::TransportKind transport = ipc::TransportKind::kMessageQueue,
    DataPlane data_plane = DataPlane::kStaged) {
  RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = clients;
  config.workers = workers;
  config.transport = transport;
  config.data_plane = data_plane;
  return config;
}

/// Runs one full vecadd task through a client; returns true if the result
/// that came back through the vsm is correct. `negotiated` (optional)
/// receives the transport the REQ handshake selected.
bool run_vecadd_client(const std::string& prefix, int id, long n,
                       RtClientOptions options = {},
                       ipc::TransportKind* negotiated = nullptr) {
  auto client = RtClient::connect(prefix, id, 2 * n * 4, n * 4, options);
  if (!client.ok()) return false;

  const auto un = static_cast<std::size_t>(n);
  auto* in = reinterpret_cast<float*>(client->input().data());
  Rng rng(static_cast<std::uint64_t>(id) + 1);
  for (std::size_t i = 0; i < 2 * un; ++i) {
    in[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
  }

  auto kid = builtin_registry().id_of("vecadd");
  if (!kid.ok()) return false;
  const std::int64_t params[4] = {n, 0, 0, 0};
  if (!client->req(*kid, params).ok()) return false;
  if (negotiated != nullptr) *negotiated = client->transport();
  if (!client->snd().ok()) return false;
  if (!client->str().ok()) return false;
  if (!client->wait_done().ok()) return false;
  if (!client->rcv().ok()) return false;

  const auto* out = reinterpret_cast<const float*>(client->output().data());
  for (std::size_t i = 0; i < un; ++i) {
    if (out[i] != in[i] + in[un + i]) return false;
  }
  return client->rls().ok();
}

TEST(RtRegistry, BuiltinsRegisteredWithStableIds) {
  KernelRegistry& reg = builtin_registry();
  EXPECT_GE(reg.size(), 6u);
  auto id = reg.id_of("vecadd");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*reg.name_of(*id), "vecadd");
  EXPECT_NE(reg.find(*id), nullptr);
  EXPECT_EQ(reg.find(9999), nullptr);
  EXPECT_FALSE(reg.id_of("no_such_kernel").ok());
}

TEST(RtServer, SingleClientVecaddRoundTrip) {
  const std::string prefix = unique_prefix("single");
  RtServer server(server_config(prefix, /*expected_clients=*/1, /*workers=*/2),
                  builtin_registry());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 1024));
  server.stop();
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
  EXPECT_EQ(server.stats().flushes.load(), 1);
}

TEST(RtServer, FourConcurrentClientThreads) {
  const std::string prefix = unique_prefix("four");
  constexpr int kClients = 4;
  RtServer server(server_config(prefix, kClients, /*workers=*/4), builtin_registry());
  ASSERT_TRUE(server.start().ok());

  std::vector<std::thread> threads;
  std::vector<bool> ok(kClients, false);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ok[static_cast<std::size_t>(c)] = run_vecadd_client(prefix, c, 2048);
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(c)]) << "client " << c;
  }
  EXPECT_EQ(server.stats().jobs_run.load(), kClients);
  // Barrier: one flush for the whole SPMD wave.
  EXPECT_EQ(server.stats().flushes.load(), 1);
}

TEST(RtServer, SlowKernelYieldsWaits) {
  const std::string prefix = unique_prefix("slow");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto client = RtClient::connect(prefix, 0, 0, 0);
  ASSERT_TRUE(client.ok());
  auto kid = builtin_registry().id_of("sleep_ms");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {50, 0, 0, 0};  // 50 ms busy kernel
  ASSERT_TRUE(client->req(*kid, params).ok());
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  ASSERT_TRUE(client->wait_done(std::chrono::microseconds(1000)).ok());
  EXPECT_GT(client->waits_observed(), 0);
  ASSERT_TRUE(client->rls().ok());
  server.stop();
}

TEST(RtServer, EpKernelMatchesSequentialReference) {
  const std::string prefix = unique_prefix("ep");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto client =
      RtClient::connect(prefix, 0, 0, sizeof(kernels::EpResult));
  ASSERT_TRUE(client.ok());
  auto kid = builtin_registry().id_of("ep");
  ASSERT_TRUE(kid.ok());
  const int m = 14;
  const std::int64_t params[4] = {m, 4, 0, 0};
  ASSERT_TRUE(client->req(*kid, params).ok());
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  ASSERT_TRUE(client->wait_done().ok());
  ASSERT_TRUE(client->rcv().ok());
  kernels::EpResult got;
  std::memcpy(&got, client->output().data(), sizeof(got));
  const kernels::EpResult expect = kernels::ep_sequential(m);
  EXPECT_EQ(got.q, expect.q);
  EXPECT_EQ(got.pairs_accepted, expect.pairs_accepted);
  EXPECT_NEAR(got.sx, expect.sx, 1e-9);
  ASSERT_TRUE(client->rls().ok());
  server.stop();
}

TEST(RtServer, MultiRoundReusesResources) {
  const std::string prefix = unique_prefix("rounds");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  const long n = 256;
  auto client = RtClient::connect(prefix, 0, 2 * n * 4, n * 4);
  ASSERT_TRUE(client.ok());
  auto kid = builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {n, 0, 0, 0};
  ASSERT_TRUE(client->req(*kid, params).ok());
  auto* in = reinterpret_cast<float*>(client->input().data());
  for (int round = 0; round < 5; ++round) {
    for (long i = 0; i < 2 * n; ++i) {
      in[i] = static_cast<float>(i + round);
    }
    ASSERT_TRUE(client->snd().ok());
    ASSERT_TRUE(client->str().ok());
    ASSERT_TRUE(client->wait_done().ok());
    ASSERT_TRUE(client->rcv().ok());
    const auto* out =
        reinterpret_cast<const float*>(client->output().data());
    for (long i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], in[i] + in[n + i]) << "round " << round;
    }
  }
  ASSERT_TRUE(client->rls().ok());
  server.stop();
  EXPECT_EQ(server.stats().jobs_run.load(), 5);
}

TEST(RtServer, ForkedProcessClients) {
  const std::string prefix = unique_prefix("fork");
  constexpr int kClients = 2;
  RtServer server(server_config(prefix, kClients, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());

  std::vector<pid_t> children;
  for (int c = 0; c < kClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: real separate process driving its VGPU.
      const bool ok = run_vecadd_client(prefix, c, 512);
      ::_exit(ok ? 0 : 1);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  server.stop();
  EXPECT_EQ(server.stats().jobs_run.load(), kClients);
}


TEST(RtServer, UnknownKernelIdRejected) {
  const std::string prefix = unique_prefix("badkid");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  auto client = RtClient::connect(prefix, 0, 16, 16);
  ASSERT_TRUE(client.ok());
  const std::int64_t params[4] = {};
  const Status st = client->req(/*kernel_id=*/9999, params);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kInternal);
  server.stop();
}

TEST(RtServer, TwoServersOnDistinctPrefixesCoexist) {
  const std::string p1 = unique_prefix("coex1");
  const std::string p2 = unique_prefix("coex2");
  RtServer s1(server_config(p1, 1, 1), builtin_registry());
  RtServer s2(server_config(p2, 1, 1), builtin_registry());
  ASSERT_TRUE(s1.start().ok());
  ASSERT_TRUE(s2.start().ok());
  EXPECT_TRUE(run_vecadd_client(p1, 0, 256));
  EXPECT_TRUE(run_vecadd_client(p2, 0, 256));
  s1.stop();
  s2.stop();
  EXPECT_EQ(s1.stats().jobs_run.load(), 1);
  EXPECT_EQ(s2.stats().jobs_run.load(), 1);
}

TEST(RtServer, ReduceAndDotKernels) {
  const std::string prefix = unique_prefix("reduce");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  const long n = 1000;
  auto client = RtClient::connect(prefix, 0, 2 * n * 4, 4);
  ASSERT_TRUE(client.ok());
  auto* in = reinterpret_cast<float*>(client->input().data());
  double expect_sum = 0.0, expect_dot = 0.0;
  for (long i = 0; i < n; ++i) {
    in[i] = static_cast<float>(i % 17) * 0.25f;
    in[n + i] = 1.0f;
    expect_sum += in[i];
    expect_dot += in[i] * in[n + i];
  }
  auto run_kernel = [&](const char* name) -> float {
    auto kid = builtin_registry().id_of(name);
    EXPECT_TRUE(kid.ok());
    const std::int64_t params[4] = {n, 0, 0, 0};
    EXPECT_TRUE(client->req(*kid, params).ok());
    EXPECT_TRUE(client->snd().ok());
    EXPECT_TRUE(client->str().ok());
    EXPECT_TRUE(client->wait_done().ok());
    EXPECT_TRUE(client->rcv().ok());
    float out = 0.0f;
    std::memcpy(&out, client->output().data(), 4);
    return out;
  };
  EXPECT_NEAR(run_kernel("reduce_sum"), expect_sum, 1e-2);
  EXPECT_NEAR(run_kernel("dot"), expect_dot, 1e-2);
  ASSERT_TRUE(client->rls().ok());
  server.stop();
}

TEST(RtServer, MgVcycleKernelReducesResidual) {
  const std::string prefix = unique_prefix("mg");
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  const int n = 8;
  const auto cells = static_cast<std::size_t>(n) * n * n;
  auto client = RtClient::connect(prefix, 0,
                                  static_cast<Bytes>(cells) * 8,
                                  static_cast<Bytes>(cells) * 8);
  ASSERT_TRUE(client.ok());
  const kernels::Grid3 rhs = kernels::mg_make_rhs(n);
  std::memcpy(client->input().data(), rhs.data().data(), cells * 8);
  auto kid = builtin_registry().id_of("mg_vcycle");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {n, 3, 0, 0};
  ASSERT_TRUE(client->req(*kid, params).ok());
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  ASSERT_TRUE(client->wait_done().ok());
  ASSERT_TRUE(client->rcv().ok());
  kernels::Grid3 u(n), zero(n);
  std::memcpy(u.data().data(), client->output().data(), cells * 8);
  zero.fill(0.0);
  EXPECT_LT(kernels::mg_residual_norm(u, rhs),
            0.5 * kernels::mg_residual_norm(zero, rhs));
  ASSERT_TRUE(client->rls().ok());
  server.stop();
}

TEST(RtServer, ParseDataPlaneSpellings) {
  DataPlane plane = DataPlane::kStaged;
  EXPECT_TRUE(parse_data_plane("zero_copy", &plane));
  EXPECT_EQ(plane, DataPlane::kZeroCopy);
  EXPECT_TRUE(parse_data_plane("staged", &plane));
  EXPECT_EQ(plane, DataPlane::kStaged);
  EXPECT_FALSE(parse_data_plane("teleport", &plane));
  EXPECT_STREQ(data_plane_name(DataPlane::kStaged), "staged");
  EXPECT_STREQ(data_plane_name(DataPlane::kZeroCopy), "zero_copy");
}

TEST(RtServer, ShmRingTransportNegotiatedAndCorrect) {
  const std::string prefix = unique_prefix("ring");
  RtServer server(
      server_config(prefix, 1, 2, ipc::TransportKind::kShmRing),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options;
  options.transport = ipc::TransportKind::kShmRing;
  ipc::TransportKind negotiated = ipc::TransportKind::kMessageQueue;
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 1024, options, &negotiated));
  server.stop();
  EXPECT_EQ(negotiated, ipc::TransportKind::kShmRing);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
  EXPECT_EQ(server.stats().flushes.load(), 1);
  // Everything after the REQ handshake travelled over the ring.
  EXPECT_GT(server.stats().ring_requests.load(), 0);
  EXPECT_GT(server.stats().syscalls_saved.load(), 0);
}

TEST(RtServer, MqueueOnlyClientFallsBackAgainstRingServer) {
  const std::string prefix = unique_prefix("mixed");
  RtServer server(
      server_config(prefix, 1, 2, ipc::TransportKind::kShmRing),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options;
  options.transport = ipc::TransportKind::kMessageQueue;
  ipc::TransportKind negotiated = ipc::TransportKind::kShmRing;
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 512, options, &negotiated));
  server.stop();
  EXPECT_EQ(negotiated, ipc::TransportKind::kMessageQueue);
  EXPECT_EQ(server.stats().ring_requests.load(), 0);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
}

TEST(RtServer, RingCapableClientAgainstMqueueServerStaysOnMqueue) {
  const std::string prefix = unique_prefix("down");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options;
  options.transport = ipc::TransportKind::kShmRing;
  ipc::TransportKind negotiated = ipc::TransportKind::kShmRing;
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 512, options, &negotiated));
  server.stop();
  EXPECT_EQ(negotiated, ipc::TransportKind::kMessageQueue);
  EXPECT_EQ(server.stats().ring_requests.load(), 0);
}

TEST(RtServer, ZeroCopyPlaneMovesNoBytesOnJobPath) {
  const std::string prefix = unique_prefix("zc");
  RtServer server(server_config(prefix, 1, 2, ipc::TransportKind::kShmRing,
                                DataPlane::kZeroCopy),
                  builtin_registry());
  ASSERT_TRUE(server.start().ok());
  RtClientOptions options;
  options.transport = ipc::TransportKind::kShmRing;
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 4096, options));
  server.stop();
  EXPECT_EQ(server.stats().bytes_copied.load(), 0);
  EXPECT_EQ(server.stats().jobs_run.load(), 1);
}

TEST(RtServer, StagedPlaneAccountsCopiedBytes) {
  const std::string prefix = unique_prefix("staged");
  const long n = 1024;
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(run_vecadd_client(prefix, 0, n));
  server.stop();
  // SND staged 2n floats in, STP staged n floats out.
  EXPECT_EQ(server.stats().bytes_copied.load(), 3 * n * 4);
}

TEST(RtServer, RingTransportForkedProcessClients) {
  const std::string prefix = unique_prefix("rfork");
  constexpr int kClients = 2;
  RtServer server(
      server_config(prefix, kClients, 2, ipc::TransportKind::kShmRing),
      builtin_registry());
  ASSERT_TRUE(server.start().ok());
  std::vector<pid_t> children;
  for (int c = 0; c < kClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: separate process, ring control plane over shared memory
      // and a cross-process futex doorbell.
      RtClientOptions options;
      options.transport = ipc::TransportKind::kShmRing;
      ipc::TransportKind negotiated = ipc::TransportKind::kMessageQueue;
      const bool ok = run_vecadd_client(prefix, c, 512, options, &negotiated);
      ::_exit(ok && negotiated == ipc::TransportKind::kShmRing ? 0 : 1);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  server.stop();
  EXPECT_EQ(server.stats().jobs_run.load(), kClients);
  EXPECT_GT(server.stats().ring_requests.load(), 0);
}

TEST(RtThreadPool, SubmitAfterShutdownReturnsFailedPrecondition) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.submit([&] { ran.store(true); }).ok());
  pool.shutdown();
  EXPECT_TRUE(ran.load());  // shutdown drains queued jobs
  const Status st = pool.submit([] {});
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
  std::vector<std::function<void()>> batch;
  batch.emplace_back([] {});
  EXPECT_EQ(pool.submit_batch(std::move(batch)).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(RtThreadPool, JobExceptionReachesHandlerNotTerminate) {
  std::atomic<int> errors{0};
  std::string what;
  std::mutex mu;
  {
    ThreadPool pool(1, [&](const char* w) {
      std::lock_guard<std::mutex> lock(mu);
      what = w;
      errors.fetch_add(1);
    });
    ASSERT_TRUE(
        pool.submit([] { throw std::runtime_error("job boom"); }).ok());
    pool.shutdown();
  }
  EXPECT_EQ(errors.load(), 1);
  EXPECT_EQ(what, "job boom");
}

/// Sharded-mode servers must serve the same protocol with the same
/// results, on both transports and both data planes.
TEST(RtServer, ShardedExecServesClientsCorrectly) {
  for (const auto transport :
       {ipc::TransportKind::kMessageQueue, ipc::TransportKind::kShmRing}) {
    for (const auto plane : {DataPlane::kStaged, DataPlane::kZeroCopy}) {
      const std::string prefix = unique_prefix("shardex");
      RtServerConfig config = server_config(prefix, 2, 2, transport, plane);
      config.exec = ExecMode::kSharded;
      RtServer server(config, builtin_registry());
      ASSERT_TRUE(server.start().ok());
      std::vector<std::thread> threads;
      std::atomic<int> ok_count{0};
      RtClientOptions options;
      options.transport = transport;
      for (int id = 0; id < 2; ++id) {
        threads.emplace_back([&, id] {
          if (run_vecadd_client(prefix, id, 100000, options)) {
            ok_count.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
      server.stop();
      EXPECT_EQ(ok_count.load(), 2)
          << ipc::transport_name(transport) << "/" << data_plane_name(plane);
      const RtExecCounters& e = server.exec_counters();
      EXPECT_GT(e.shards_executed, 0);
      long histogram_sum = 0;
      for (const long c : e.worker_shards) histogram_sum += c;
      EXPECT_EQ(histogram_sum, e.shards_executed);
      if (plane == DataPlane::kStaged) {
        EXPECT_GT(server.stats().bytes_copied.load(), 0);
      } else {
        EXPECT_EQ(server.stats().bytes_copied.load(), 0);
      }
    }
  }
}

TEST(RtServer, ShardedSgemmMatchesSerialOracle) {
  const int n = 96;
  const auto un = static_cast<std::size_t>(n) * n;
  std::vector<float> a(un);
  std::vector<float> b(un);
  Rng rng(77);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  auto kid = builtin_registry().id_of("sgemm");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {n, 0, 0, 0};

  auto run_mode = [&](ExecMode mode, std::vector<float>* out) {
    const std::string prefix =
        unique_prefix(mode == ExecMode::kSharded ? "gemm_s" : "gemm_0");
    RtServerConfig config = server_config(prefix, 1, 2);
    config.exec = mode;
    RtServer server(config, builtin_registry());
    ASSERT_TRUE(server.start().ok());
    auto client = RtClient::connect(prefix, 0, 2 * un * 4, un * 4);
    ASSERT_TRUE(client.ok());
    auto* in = reinterpret_cast<float*>(client->input().data());
    std::memcpy(in, a.data(), un * sizeof(float));
    std::memcpy(in + un, b.data(), un * sizeof(float));
    ASSERT_TRUE(client->req(*kid, params).ok());
    ASSERT_TRUE(client->snd().ok());
    ASSERT_TRUE(client->str().ok());
    ASSERT_TRUE(client->wait_done().ok());
    ASSERT_TRUE(client->rcv().ok());
    out->resize(un);
    std::memcpy(out->data(), client->output().data(), un * sizeof(float));
    ASSERT_TRUE(client->rls().ok());
    server.stop();
  };
  std::vector<float> serial_out;
  std::vector<float> sharded_out;
  run_mode(ExecMode::kSerial, &serial_out);
  run_mode(ExecMode::kSharded, &sharded_out);
  ASSERT_EQ(std::memcmp(serial_out.data(), sharded_out.data(),
                        un * sizeof(float)),
            0);
}

TEST(RtServer, KernelExceptionSurfacesAsClientErrorNotCrash) {
  for (const auto mode : {ExecMode::kSerial, ExecMode::kSharded}) {
    KernelRegistry registry;
    const int boom = registry.add(
        "boom", [](std::span<const std::byte>, std::span<std::byte>,
                   const std::int64_t*) {
          throw std::runtime_error("kernel boom");
        });
    const std::string prefix =
        unique_prefix(mode == ExecMode::kSharded ? "boom_s" : "boom_0");
    RtServerConfig config = server_config(prefix, 1, 1);
    config.exec = mode;
    RtServer server(config, registry);
    ASSERT_TRUE(server.start().ok());
    {
      auto client = RtClient::connect(prefix, 0, 64, 64);
      ASSERT_TRUE(client.ok());
      const std::int64_t params[4] = {0, 0, 0, 0};
      ASSERT_TRUE(client->req(boom, params).ok());
      ASSERT_TRUE(client->snd().ok());
      ASSERT_TRUE(client->str().ok());
      const Status done = client->wait_done();
      EXPECT_FALSE(done.ok()) << exec_mode_name(mode);
      ASSERT_TRUE(client->rls().ok());
    }
    server.stop();
    EXPECT_EQ(server.stats().jobs_failed.load(), 1) << exec_mode_name(mode);
  }
}

TEST(RtServer, ParseExecModeSpellings) {
  ExecMode mode = ExecMode::kSerial;
  EXPECT_TRUE(parse_exec_mode("sharded", &mode));
  EXPECT_EQ(mode, ExecMode::kSharded);
  EXPECT_TRUE(parse_exec_mode("serial", &mode));
  EXPECT_EQ(mode, ExecMode::kSerial);
  EXPECT_FALSE(parse_exec_mode("warp", &mode));
  EXPECT_STREQ(exec_mode_name(ExecMode::kSharded), "sharded");
  EXPECT_STREQ(exec_mode_name(ExecMode::kSerial), "serial");
}

TEST(RtServer, StopIsIdempotentAndRestartable) {
  const std::string prefix = unique_prefix("restart");
  {
    RtServer server(server_config(prefix, 1, 1), builtin_registry());
    ASSERT_TRUE(server.start().ok());
    server.stop();
    server.stop();  // no-op
  }
  // Fresh server on the same prefix works.
  RtServer server(server_config(prefix, 1, 1), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 128));
  server.stop();
}

// With tracing on, every completed job must carry the full phase chain
// queue -> Tin -> Tcomp -> Tout on its client lane, with monotone
// non-overlapping timestamps. Sharded + staged sgemm keeps the three data
// phases strictly sequential inside the job (no streamed overlap), so the
// ordering assertion is exact.
TEST(RtServer, TracedJobCarriesFullSpanChain) {
  const int n = 64;
  const auto un = static_cast<std::size_t>(n) * n;
  const int clients = 2;
  const std::string prefix = unique_prefix("spans");
  RtServerConfig config = server_config(prefix, clients, 2);
  config.exec = ExecMode::kSharded;
  config.obs.tracing = true;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());

  auto kid = builtin_registry().id_of("sgemm");
  ASSERT_TRUE(kid.ok());
  RtClientOptions options;
  options.tracer = &server.obs().tracer();  // client verbs join the trace
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int id = 0; id < clients; ++id) {
    threads.emplace_back([&, id] {
      auto client =
          RtClient::connect(prefix, id, 2 * un * 4, un * 4, options);
      if (!client.ok()) return;
      auto* in = reinterpret_cast<float*>(client->input().data());
      for (std::size_t i = 0; i < 2 * un; ++i) {
        in[i] = static_cast<float>(i % 7) * 0.25f;
      }
      const std::int64_t params[4] = {n, 0, 0, 0};
      bool ok = client->req(*kid, params).ok();
      ok = ok && client->snd().ok();
      ok = ok && client->str().ok();
      ok = ok && client->wait_done().ok();
      ok = ok && client->rcv().ok();
      ok = ok && client->rls().ok();
      if (ok) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  ASSERT_EQ(ok_count.load(), clients);

  const std::vector<obs::SpanRecord> spans = server.obs().tracer().collect();
  EXPECT_EQ(server.obs().tracer().dropped(), 0);
  int barriers = 0;
  int verbs = 0;
  for (int id = 0; id < clients; ++id) {
    const obs::SpanRecord* queue = nullptr;
    const obs::SpanRecord* copy_in = nullptr;
    const obs::SpanRecord* kernel = nullptr;
    const obs::SpanRecord* copy_out = nullptr;
    for (const obs::SpanRecord& span : spans) {
      EXPECT_GE(span.begin, 0);
      EXPECT_GE(span.end, span.begin);
      if (span.lane == obs::kLaneServer &&
          span.phase == obs::Phase::kFlushBarrier && id == 0) {
        ++barriers;
      }
      if (span.lane != id) continue;
      if (span.phase == obs::Phase::kClientVerb && id == 0) ++verbs;
      auto take = [&](const obs::SpanRecord*& slot) {
        EXPECT_EQ(slot, nullptr) << "duplicate phase span on lane " << id;
        EXPECT_EQ(span.aux, static_cast<std::int32_t>(*kid));
        slot = &span;
      };
      switch (span.phase) {
        case obs::Phase::kQueueWait: take(queue); break;
        case obs::Phase::kCopyIn: take(copy_in); break;
        case obs::Phase::kKernel: take(kernel); break;
        case obs::Phase::kCopyOut: take(copy_out); break;
        default: break;
      }
    }
    ASSERT_NE(queue, nullptr) << "lane " << id;
    ASSERT_NE(copy_in, nullptr) << "lane " << id;
    ASSERT_NE(kernel, nullptr) << "lane " << id;
    ASSERT_NE(copy_out, nullptr) << "lane " << id;
    // queue ends at the scheduler grant, before the job's data phases;
    // the three data phases neither overlap nor reorder.
    EXPECT_LE(queue->end, copy_in->begin) << "lane " << id;
    EXPECT_LE(copy_in->end, kernel->begin) << "lane " << id;
    EXPECT_LE(kernel->end, copy_out->begin) << "lane " << id;
  }
  EXPECT_GE(barriers, 1);   // the cohort co-flush span on the server lane
  EXPECT_GE(verbs, 5);      // REQ/SND/STR/RCV/RLS round trips, client 0
}

// After stop(), the legacy RtServerStats atomics and the obs registry must
// agree: the registry is the single code path vgpu-sim prints from.
TEST(RtServer, RegistryMirrorsLegacyCountersAfterStop) {
  const std::string prefix = unique_prefix("mirror");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(run_vecadd_client(prefix, 0, 4096));
  server.stop();

  const obs::Registry& metrics = server.obs().metrics();
  auto counter = [&](const char* name) {
    const obs::Counter* c = metrics.find_counter(name);
    return c != nullptr ? c->value() : -1;
  };
  const RtServerStats& stats = server.stats();
  EXPECT_EQ(counter("rt.requests"), stats.requests.load());
  EXPECT_EQ(counter("rt.jobs_run"), stats.jobs_run.load());
  EXPECT_EQ(counter("rt.flushes"), stats.flushes.load());
  EXPECT_EQ(counter("rt.bytes_copied"), stats.bytes_copied.load());
  EXPECT_EQ(counter("rt.jobs_failed"), 0);
  // The batch-depth histogram carries one sample per non-empty drain
  // sweep, so its total count sits between 1 and the request count.
  const obs::Histogram* depth = metrics.find_histogram("rt.batch_depth");
  ASSERT_NE(depth, nullptr);
  const long drains = depth->count();
  EXPECT_GE(drains, 1);
  EXPECT_LE(drains, stats.requests.load());
  // Tracing was off: no spans, and the disabled tracer recorded nothing.
  EXPECT_TRUE(server.obs().tracer().collect().empty());
  // Stop is idempotent for the export too: a second stop() must not
  // double-count the delta-synced histogram.
  server.stop();
  EXPECT_EQ(depth->count(), drains);
}

TEST(RtServer, ParkCeilRoundsUpToWholeMilliseconds) {
  using std::chrono::microseconds;
  using std::chrono::milliseconds;
  // The old truncation cut 1.9ms to 1ms and doubled idle wakeups.
  EXPECT_EQ(park_ceil_ms(microseconds(1900)), milliseconds(2));
  EXPECT_EQ(park_ceil_ms(microseconds(1000)), milliseconds(1));
  EXPECT_EQ(park_ceil_ms(microseconds(1001)), milliseconds(2));
  EXPECT_EQ(park_ceil_ms(microseconds(250)), milliseconds(1));
  EXPECT_EQ(park_ceil_ms(microseconds(0)), milliseconds(1));
}

TEST(RtServer, ArenaClientCompletesVecaddRoundTrip) {
  const std::string prefix = unique_prefix("arena");
  RtServerConfig config =
      server_config(prefix, 1, 2, ipc::TransportKind::kShmRing);
  config.arena_size = 1 * kMiB;
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());

  const long n = 512;
  auto ctx = RtClientContext::open(prefix);
  ASSERT_TRUE(ctx.ok()) << ctx.status().to_string();
  RtClientOptions options;
  options.transport = ipc::TransportKind::kShmRing;
  options.arena = true;
  auto client = RtClient::connect(*ctx, 0, 2 * n * 4, n * 4, options);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  auto kid = builtin_registry().id_of("vecadd");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {n, 0, 0, 0};
  ASSERT_TRUE(client->req(*kid, params).ok());
  // The grant landed inside the pooled arena, the ack came through a
  // handshake mailbox, and the session rides the ring from here on.
  EXPECT_TRUE(client->in_arena());
  EXPECT_EQ(client->transport(), ipc::TransportKind::kShmRing);
  EXPECT_NE(client->session(), 0);

  auto* in = reinterpret_cast<float*>(client->input().data());
  const auto un = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < 2 * un; ++i) {
    in[i] = static_cast<float>(i) * 0.25f;
  }
  ASSERT_TRUE(client->snd().ok());
  ASSERT_TRUE(client->str().ok());
  ASSERT_TRUE(client->wait_done().ok());
  ASSERT_TRUE(client->rcv().ok());
  const auto* out = reinterpret_cast<const float*>(client->output().data());
  for (std::size_t i = 0; i < un; ++i) {
    ASSERT_EQ(out[i], in[i] + in[un + i]) << "element " << i;
  }
  EXPECT_TRUE(client->rls().ok());

  server.stop();
  EXPECT_EQ(server.stats().arena_grants.load(), 1);
  EXPECT_GE(server.stats().mailbox_acks.load(), 1);
  EXPECT_GT(server.stats().ring_requests.load(), 0);
}

TEST(RtServer, SessionChurnReusesSlotsWithFreshGenerations) {
  const std::string prefix = unique_prefix("churn");
  constexpr int kSlots = 16;
  constexpr int kAttaches = 1000;
  RtServerConfig config =
      server_config(prefix, 1, 2, ipc::TransportKind::kShmRing);
  config.max_sessions = kSlots;
  config.arena_size = 1 * kMiB;
  config.release_linger = std::chrono::milliseconds(1);
  config.lease_check_interval = std::chrono::milliseconds(5);
  RtServer server(config, builtin_registry());
  ASSERT_TRUE(server.start().ok());

  auto ctx = RtClientContext::open(prefix);
  ASSERT_TRUE(ctx.ok());
  auto kid = builtin_registry().id_of("vecadd");
  ASSERT_TRUE(kid.ok());
  const std::int64_t params[4] = {8, 0, 0, 0};

  // 1000 attach/release cycles through a 16-slot table: ids repeat, so
  // each re-REQ retires its predecessor's (lingering) session and the
  // slot recycles under a bumped generation.
  std::uint32_t max_generation = 0;
  for (int i = 0; i < kAttaches; ++i) {
    RtClientOptions options;
    options.transport = ipc::TransportKind::kShmRing;
    options.arena = true;
    auto client =
        RtClient::connect(*ctx, i % kSlots, 8 * 4 * 2, 8 * 4, options);
    ASSERT_TRUE(client.ok()) << "attach " << i;
    ASSERT_TRUE(client->req(*kid, params).ok()) << "attach " << i;
    const std::int64_t token = client->session();
    ASSERT_NE(token, 0);
    EXPECT_LT(session_slot(token), static_cast<std::uint32_t>(kSlots));
    max_generation = std::max(max_generation, session_generation(token));
    ASSERT_TRUE(client->rls().ok()) << "attach " << i;
  }
  server.stop();
  // Slots were genuinely reused (generation advanced well past 1) and
  // every retired incarnation was recycled, not leaked.
  EXPECT_GT(max_generation, 1u);
  EXPECT_EQ(server.stats().sessions_attached.load(), kAttaches);
  EXPECT_GE(server.stats().slots_recycled.load(), kAttaches - kSlots);
  EXPECT_EQ(server.stats().arena_grants.load(), kAttaches);
}

TEST(RtServer, StaleGenerationTokenIsRejected) {
  const std::string prefix = unique_prefix("stale");
  RtServer server(server_config(prefix, 1, 2), builtin_registry());
  ASSERT_TRUE(server.start().ok());

  // Drive the wire protocol by hand: RtClient never sends a stale token,
  // so the test owns the client-side queues and forges one.
  const int id = 7;
  auto resp = ipc::MessageQueue<RtResponse>::create(prefix + "_resp" +
                                                    std::to_string(id));
  ASSERT_TRUE(resp.ok());
  auto vsm = ipc::SharedMemory::create(
      prefix + "_vsm" + std::to_string(id),
      vsm_region_size(ipc::kTransportCapMqueue, 64, 64));
  ASSERT_TRUE(vsm.ok());
  auto req = ipc::MessageQueue<RtRequest>::open(prefix + "_req");
  ASSERT_TRUE(req.ok());
  auto kid = builtin_registry().id_of("vecadd");
  ASSERT_TRUE(kid.ok());

  RtRequest request;
  request.op = RtOp::kReq;
  request.client = id;
  request.kernel_id = *kid;
  request.pid = static_cast<std::int32_t>(::getpid());
  request.seq = 1;
  request.bytes_in = 64;
  request.bytes_out = 64;
  request.params[0] = 8;
  ASSERT_TRUE(req->send(request).ok());
  auto first = resp->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->ack, RtAck::kAck);
  const std::int64_t token1 = first->session;
  ASSERT_NE(token1, 0);

  // Re-REQ (crash/reconnect path): the same id gets the same slot back
  // under a fresh generation, invalidating the first token.
  request.seq = 2;
  ASSERT_TRUE(req->send(request).ok());
  auto second = resp->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->ack, RtAck::kAck);
  const std::int64_t token2 = second->session;
  ASSERT_NE(token2, token1);
  EXPECT_EQ(session_slot(token2), session_slot(token1));
  EXPECT_GT(session_generation(token2), session_generation(token1));

  // A verb under the recycled generation is dropped without a response.
  RtRequest stale;
  stale.op = RtOp::kSnd;
  stale.client = id;
  stale.seq = 3;
  stale.session = token1;
  ASSERT_TRUE(req->send(stale).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().stale_sessions.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().stale_sessions.load(), 1);

  // The live token still works.
  RtRequest good = stale;
  good.seq = 4;
  good.session = token2;
  ASSERT_TRUE(req->send(good).ok());
  auto acked = resp->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(acked->ack, RtAck::kAck);

  RtRequest rls = good;
  rls.op = RtOp::kRls;
  rls.seq = 5;
  ASSERT_TRUE(req->send(rls).ok());
  auto done = resp->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->ack, RtAck::kAck);
  server.stop();
}

}  // namespace
}  // namespace vgpu::rt
