// Unit tests for the grid-sharded execution engine: the Chase-Lev deque,
// shard planning and occupancy caps, parallel_for correctness, work
// stealing, participating waits (nested parallel_for), shutdown Status
// semantics, and shard-exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "exec/steal_deque.hpp"
#include "gpu/spec.hpp"

namespace vgpu::exec {
namespace {

TEST(StealDeque, OwnerPushPopIsLifo) {
  StealDeque<int, 8> dq;
  EXPECT_TRUE(dq.empty());
  EXPECT_TRUE(dq.push_bottom(1));
  EXPECT_TRUE(dq.push_bottom(2));
  EXPECT_TRUE(dq.push_bottom(3));
  EXPECT_EQ(dq.pop_bottom().value(), 3);
  EXPECT_EQ(dq.pop_bottom().value(), 2);
  EXPECT_EQ(dq.pop_bottom().value(), 1);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_TRUE(dq.empty());
}

TEST(StealDeque, ThiefStealsFifo) {
  StealDeque<int, 8> dq;
  for (int i = 1; i <= 3; ++i) EXPECT_TRUE(dq.push_bottom(i));
  EXPECT_EQ(dq.steal().value(), 1);  // oldest first
  EXPECT_EQ(dq.steal().value(), 2);
  EXPECT_EQ(dq.pop_bottom().value(), 3);
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(StealDeque, RejectsPushWhenFull) {
  StealDeque<int, 4> dq;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dq.push_bottom(i));
  EXPECT_FALSE(dq.push_bottom(99));
  EXPECT_TRUE(dq.pop_bottom().has_value());
  EXPECT_TRUE(dq.push_bottom(99));  // space again after a pop
}

TEST(StealDeque, ConcurrentOwnerAndThievesSeeEveryItemOnce) {
  StealDeque<int, 1024> dq;
  constexpr int kItems = 512;
  std::atomic<long> sum{0};
  std::atomic<int> taken{0};
  std::atomic<bool> start{false};
  auto thief = [&] {
    while (!start.load()) std::this_thread::yield();
    while (taken.load() < kItems) {
      if (auto v = dq.steal()) {
        sum.fetch_add(*v);
        taken.fetch_add(1);
      }
    }
  };
  std::thread t1(thief);
  std::thread t2(thief);
  start.store(true);
  long pushed = 0;
  for (int i = 1; i <= kItems; ++i) {
    while (!dq.push_bottom(i)) {
      if (auto v = dq.pop_bottom()) {
        sum.fetch_add(*v);
        taken.fetch_add(1);
      }
    }
    pushed += i;
  }
  while (auto v = dq.pop_bottom()) {
    sum.fetch_add(*v);
    taken.fetch_add(1);
  }
  t1.join();
  t2.join();
  EXPECT_EQ(taken.load(), kItems);
  EXPECT_EQ(sum.load(), pushed);
}

TEST(ExecPlan, ShardCountBalancesAndClamps) {
  EXPECT_EQ(plan_shard_count(0, 4, 4, 0), 1);
  EXPECT_EQ(plan_shard_count(3, 4, 4, 0), 3);    // never above total
  EXPECT_EQ(plan_shard_count(1000, 4, 4, 0), 16);  // workers * oversub
  EXPECT_EQ(plan_shard_count(1000, 4, 4, 6), 6);   // occupancy cap wins
  EXPECT_EQ(plan_shard_count(1000, 4, 4, 100), 16);
}

TEST(ExecPlan, OccupancyCapMatchesDeviceModel) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  gpu::KernelGeometry g;
  g.grid_blocks = 1024;
  g.threads_per_block = 256;
  const long cap = occupancy_shard_cap(spec, g);
  EXPECT_GE(cap, 1);
  // The cap is the modeled device's co-resident block count, far below a
  // 1024-block grid.
  EXPECT_LT(cap, 1024);
  EXPECT_EQ(cap, gpu::compute_occupancy(spec, g).device_blocks(spec));
}

TEST(ExecEngine, ParallelForCoversRangeExactlyOnce) {
  ExecConfig config;
  config.workers = 3;
  ExecEngine engine(config);
  constexpr long kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  const Status st = engine.parallel_for(kN, [&](long b, long e) {
    for (long i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  ASSERT_TRUE(st.ok());
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
  EXPECT_EQ(engine.stats().launches.load(), 1);
  EXPECT_GT(engine.stats().shards_executed.load(), 1);
}

TEST(ExecEngine, ShardCapLimitsFanOut) {
  ExecConfig config;
  config.workers = 4;
  ExecEngine engine(config);
  std::atomic<long> shards{0};
  ASSERT_TRUE(engine
                  .parallel_for(
                      1000, [&](long, long) { shards.fetch_add(1); }, 3)
                  .ok());
  EXPECT_EQ(shards.load(), 3);
}

TEST(ExecEngine, WorkerShardCountsSumToTotal) {
  ExecConfig config;
  config.workers = 2;
  ExecEngine engine(config);
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(engine.parallel_for(64, [](long b, long e) {
      volatile double x = 0;
      for (long i = b; i < e; ++i) x += static_cast<double>(i);
    }).ok());
  }
  engine.shutdown();
  long sum = 0;
  for (int i = 0; i <= engine.workers(); ++i) sum += engine.worker_shards(i);
  EXPECT_EQ(sum, engine.stats().shards_executed.load());
}

TEST(ExecEngine, NestedParallelForDoesNotDeadlock) {
  ExecConfig config;
  config.workers = 1;  // worst case: the outer shard occupies the worker
  ExecEngine engine(config);
  std::atomic<long> inner{0};
  const Status st = engine.parallel_for(2, [&](long b, long e) {
    for (long i = b; i < e; ++i) {
      ASSERT_TRUE(
          engine.parallel_for(8, [&](long ib, long ie) {
            inner.fetch_add(ie - ib);
          }).ok());
    }
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner.load(), 16);
}

TEST(ExecEngine, ExternalThreadsShareOneEngine) {
  ExecConfig config;
  config.workers = 2;
  ExecEngine engine(config);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        ASSERT_TRUE(engine.parallel_for(100, [&](long b, long e) {
          total.fetch_add(e - b);
        }).ok());
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 5 * 100);
}

TEST(ExecEngine, ShardExceptionPropagatesToWaiter) {
  ExecConfig config;
  config.workers = 2;
  ExecEngine engine(config);
  EXPECT_THROW(
      {
        const Status st = engine.parallel_for(16, [](long b, long) {
          if (b == 0) throw std::runtime_error("shard boom");
        });
        (void)st;
      },
      std::runtime_error);
  // The engine survives a throwing launch.
  std::atomic<long> count{0};
  ASSERT_TRUE(
      engine.parallel_for(4, [&](long b, long e) { count += e - b; }).ok());
  EXPECT_EQ(count.load(), 4);
}

TEST(ExecEngine, SubmitRunsExternalJob) {
  ExecEngine engine;
  std::atomic<bool> ran{false};
  ASSERT_TRUE(engine.submit([&] { ran.store(true); }).ok());
  while (!ran.load()) std::this_thread::yield();
  engine.shutdown();
  EXPECT_EQ(engine.stats().external_jobs.load(), 1);
}

TEST(ExecEngine, LaunchAfterShutdownReturnsFailedPrecondition) {
  ExecEngine engine;
  engine.shutdown();
  engine.shutdown();  // idempotent
  const Status st = engine.parallel_for(4, [](long, long) {});
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(engine.submit([] {}).code(), ErrorCode::kFailedPrecondition);
}

TEST(ExecEngine, ExecutorThrowsAfterShutdown) {
  ExecEngine engine;
  const ParallelFor pf = engine.executor();
  engine.shutdown();
  EXPECT_THROW(pf(4, [](long, long) {}), std::runtime_error);
}

TEST(ExecEngine, StealsHappenUnderImbalance) {
  ExecConfig config;
  config.workers = 4;
  config.oversubscribe = 8;
  ExecEngine engine(config);
  // Skewed shard costs force idle workers to steal from the loaded deque.
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(engine.parallel_for(64, [](long b, long e) {
      for (long i = b; i < e; ++i) {
        volatile double x = 0;
        const long spin = (i % 8 == 0) ? 20000 : 100;
        for (long k = 0; k < spin; ++k) x += static_cast<double>(k);
      }
    }).ok());
  }
  engine.shutdown();
  EXPECT_EQ(engine.stats().launches.load(), 20);
  EXPECT_GT(engine.stats().shards_executed.load(), 20);
}

}  // namespace
}  // namespace vgpu::exec
