// Tests for the execution timeline: unit behaviour, device-integrated
// recording (copies, kernels, context switches, GVM staging) and the
// Chrome trace-event export.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gpu/trace.hpp"
#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::gpu {
namespace {

TEST(Timeline, BusyTimeSumsPerCategory) {
  Timeline tl;
  tl.record({"a", "copy", "lane", 0, 100});
  tl.record({"b", "copy", "lane", 50, 250});
  tl.record({"c", "kernel", "lane", 0, 1000});
  EXPECT_EQ(tl.busy_time("copy"), 300);
  EXPECT_EQ(tl.busy_time("kernel"), 1000);
  EXPECT_EQ(tl.busy_time("nothing"), 0);
}

TEST(Timeline, MaxConcurrencyCountsOverlaps) {
  Timeline tl;
  tl.record({"a", "k", "1", 0, 100});
  tl.record({"b", "k", "2", 50, 150});
  tl.record({"c", "k", "3", 60, 70});
  tl.record({"d", "k", "4", 200, 300});  // disjoint
  EXPECT_EQ(tl.max_concurrency("k"), 3);
  // Touching endpoints do not overlap (close before open).
  Timeline tl2;
  tl2.record({"a", "k", "1", 0, 100});
  tl2.record({"b", "k", "2", 100, 200});
  EXPECT_EQ(tl2.max_concurrency("k"), 1);
}

TEST(Timeline, ChromeTraceJsonWellFormed) {
  Timeline tl;
  tl.record({"H2D \"x\"", "copy", "engine:h2d", 1000, 2000});
  const std::string path = ::testing::TempDir() + "/vgpu_trace.json";
  ASSERT_TRUE(tl.write_chrome_trace(path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("engine:h2d"), std::string::npos);
  EXPECT_NE(s.find("\\\"x\\\""), std::string::npos);  // escaped quote
}

TEST(Timeline, VirtualizedRunRecordsAllCategories) {
  const workloads::Workload w = workloads::vector_add(5'000'000);
  Timeline tl;
  const gvm::RunResult r = gvm::run_virtualized(
      tesla_c2070(), gvm::GvmConfig{}, w.plan, w.rounds, 4, &tl);
  (void)r;
  EXPECT_GT(tl.busy_time("copy"), 0);
  EXPECT_GT(tl.busy_time("kernel"), 0);
  EXPECT_GT(tl.busy_time("fabric"), 0);
  EXPECT_GT(tl.busy_time("staging"), 0);
  EXPECT_EQ(tl.busy_time("context"), 0);  // single GVM context: no switches
  // Figure 5's overlap: H2D and D2H engines run concurrently.
  EXPECT_GE(tl.max_concurrency("copy"), 2);
}

TEST(Timeline, BaselineRunRecordsContextSwitches) {
  const workloads::Workload w = workloads::vector_add(2'000'000);
  Timeline tl;
  const gvm::RunResult r =
      gvm::run_baseline(tesla_c2070(), w.plan, w.rounds, 3, &tl);
  EXPECT_EQ(r.device.ctx_switches, 2);
  EXPECT_EQ(tl.max_concurrency("context"), 1);
  EXPECT_EQ(tl.busy_time("context"),
            2 * tesla_c2070().ctx_switch_time);
}

TEST(Timeline, ConcurrentEpKernelsVisibleInTrace) {
  const workloads::Workload w = workloads::npb_ep(20);
  Timeline tl;
  (void)gvm::run_virtualized(tesla_c2070(), gvm::GvmConfig{}, w.plan,
                             w.rounds, 8, &tl);
  // The paper's central claim, visible in the trace itself.
  EXPECT_GE(tl.max_concurrency("kernel"), 8);
}

TEST(Timeline, CopyBusyMatchesDeviceStats) {
  const workloads::Workload w = workloads::vector_add(4'000'000);
  Timeline tl;
  const gvm::RunResult r =
      gvm::run_baseline(tesla_c2070(), w.plan, w.rounds, 2, &tl);
  EXPECT_EQ(tl.busy_time("copy"), r.device.h2d_busy + r.device.d2h_busy);
}


TEST(Timeline, ProtocolVerbsRecorded) {
  const workloads::Workload w = workloads::vector_add(2'000'000);
  Timeline tl;
  (void)gvm::run_virtualized(tesla_c2070(), gvm::GvmConfig{}, w.plan,
                             w.rounds, 2, &tl);
  int req = 0, str = 0, rls = 0;
  for (const TraceEvent& e : tl.events()) {
    if (e.category != "protocol") continue;
    if (e.name.rfind("REQ", 0) == 0) ++req;
    if (e.name.rfind("STR", 0) == 0) ++str;
    if (e.name.rfind("RLS", 0) == 0) ++rls;
  }
  EXPECT_EQ(req, 2);
  EXPECT_EQ(str, 2);
  EXPECT_EQ(rls, 2);
}

}  // namespace
}  // namespace vgpu::gpu
