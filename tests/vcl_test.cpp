// Tests for the OpenCL-flavored frontend: the NDRange mapping and the
// command-queue semantics over the simulated device.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/blas1.hpp"
#include "vcl/vcl.hpp"

namespace vgpu::vcl {
namespace {

gpu::DeviceSpec test_spec() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(5.0);
  spec.ctx_create_time = milliseconds(1.0);
  return spec;
}

TEST(Vcl, NdrangeMapsToGridAndBlock) {
  const gpu::KernelGeometry g =
      ndrange_to_geometry(NDRange{1'000'000, 256}, 20, 1024);
  EXPECT_EQ(g.grid_blocks, 3907);  // ceil(1e6 / 256)
  EXPECT_EQ(g.threads_per_block, 256);
  EXPECT_EQ(g.regs_per_thread, 20);
  EXPECT_EQ(g.shmem_per_block, 1024);
}

TEST(Vcl, ExactMultipleNeedsNoExtraGroup) {
  const gpu::KernelGeometry g = ndrange_to_geometry(NDRange{512, 64}, 16, 0);
  EXPECT_EQ(g.grid_blocks, 8);
}

TEST(Vcl, WriteKernelReadRoundTrip) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  vcuda::Runtime rt(sim, dev);
  sim.spawn([](vcuda::Runtime& rt) -> des::Task<> {
    auto ctx = co_await VclContext::create(rt);
    const long n = 1024;
    auto in = ctx->create_buffer(2 * n * 4, /*backed=*/true);
    auto out = ctx->create_buffer(n * 4, /*backed=*/true);
    VGPU_ASSERT(in.ok() && out.ok());

    std::vector<float> host(2 * n);
    for (long i = 0; i < 2 * n; ++i) host[static_cast<std::size_t>(i)] = i;

    CommandQueue queue = ctx->create_command_queue();
    queue.enqueue_write_buffer(*in, host.data(), 2 * n * 4);
    gpu::KernelCost cost{1.0, 12.0, 1.0};
    Buffer& in_ref = *in;
    Buffer& out_ref = *out;
    queue.enqueue_ndrange_kernel("vecadd", NDRange{n, 128}, cost, [&] {
      const float* a = in_ref.as<float>();
      kernels::vecadd({a, static_cast<std::size_t>(n)},
                      {a + n, static_cast<std::size_t>(n)},
                      {out_ref.as<float>(), static_cast<std::size_t>(n)});
    });
    std::vector<float> result(n);
    queue.enqueue_read_buffer(result.data(), *out, n * 4);
    co_await queue.finish();

    for (long i = 0; i < n; ++i) {
      EXPECT_EQ(result[static_cast<std::size_t>(i)],
                host[static_cast<std::size_t>(i)] +
                    host[static_cast<std::size_t>(n + i)]);
    }
    VGPU_ASSERT(ctx->release_buffer(*in).ok());
    VGPU_ASSERT(ctx->release_buffer(*out).ok());
  }(rt));
  sim.run();
  EXPECT_EQ(dev.stats().kernels_completed, 1);
}

TEST(Vcl, InOrderQueueSemantics) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  vcuda::Runtime rt(sim, dev);
  std::vector<int> order;
  sim.spawn([](vcuda::Runtime& rt, std::vector<int>& order) -> des::Task<> {
    auto ctx = co_await VclContext::create(rt);
    CommandQueue queue = ctx->create_command_queue();
    gpu::KernelCost cost{1e4, 0.0, 1.0};
    for (int i = 0; i < 4; ++i) {
      queue.enqueue_ndrange_kernel("k", NDRange{256, 64}, cost,
                                   [&order, i] { order.push_back(i); });
    }
    co_await queue.finish();
  }(rt, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Vcl, TwoQueuesOverlapLikeStreams) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  vcuda::Runtime rt(sim, dev);
  sim.spawn([](vcuda::Runtime& rt) -> des::Task<> {
    auto ctx = co_await VclContext::create(rt);
    CommandQueue q1 = ctx->create_command_queue();
    CommandQueue q2 = ctx->create_command_queue();
    gpu::KernelCost cost{1e6, 0.0, 1.0};
    q1.enqueue_ndrange_kernel("a", NDRange{512, 128}, cost);
    q2.enqueue_ndrange_kernel("b", NDRange{512, 128}, cost);
    co_await q1.finish();
    co_await q2.finish();
  }(rt));
  sim.run();
  EXPECT_GE(dev.stats().max_open_kernels, 2);
}

TEST(Vcl, CopyBufferMovesDeviceData) {
  des::Simulator sim;
  gpu::Device dev(sim, test_spec());
  vcuda::Runtime rt(sim, dev);
  sim.spawn([](vcuda::Runtime& rt) -> des::Task<> {
    auto ctx = co_await VclContext::create(rt);
    auto a = ctx->create_buffer(64, true);
    auto b = ctx->create_buffer(64, true);
    VGPU_ASSERT(a.ok() && b.ok());
    CommandQueue queue = ctx->create_command_queue();
    const double v = 2.718281828;
    queue.enqueue_write_buffer(*a, &v, 8);
    queue.enqueue_copy_buffer(*b, *a, 64);
    double out = 0.0;
    queue.enqueue_read_buffer(&out, *b, 8);
    co_await queue.finish();
    EXPECT_EQ(out, v);
  }(rt));
  sim.run();
}

}  // namespace
}  // namespace vgpu::vcl
