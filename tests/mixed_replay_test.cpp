// DES-vs-live cross-check for the trace replay engines (ROADMAP item 5):
// one small canonical mix replayed on the coroutine DES path
// (gvm::run_mixed, functional kernel bodies) and on the live RtServer
// path (serial exec) must produce identical per-tenant completion counts
// and bitwise-identical kernel outputs — the tenant-to-client mapping,
// the input filler, and the kernel arithmetic are shared, so any drift
// between the two stacks shows up here as a byte diff.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gpu/spec.hpp"
#include "gvm/experiment.hpp"
#include "sched/scheduler.hpp"
#include "workloads/trace/replay.hpp"
#include "workloads/trace/trace.hpp"

namespace vgpu::workloads::trace {
namespace {

/// A deliberately small mix: every parity kernel (vecadd, sgemm,
/// blackscholes), every arrival archetype class (bursty, poisson,
/// closed-loop), two workers on the bursty tenant to exercise the
/// seq % W partition, and a graph-capture tenant for the live path.
Trace cross_check_mix(bool with_graph) {
  TenantSpec infer;
  infer.id = 0;
  infer.name = "infer";
  infer.arrival = ArrivalKind::kBursty;
  infer.kernel = "vecadd";
  infer.scale = 1024;
  infer.rate_hz = 150.0;
  infer.burst_factor = 3.0;
  infer.burst_ms = 30.0;
  infer.idle_ms = 50.0;
  infer.workers = 2;
  infer.jobs = 64;
  infer.graph = with_graph;
  infer.slo_p99_ms = 50.0;

  TenantSpec risk;
  risk.id = 1;
  risk.name = "risk";
  risk.arrival = ArrivalKind::kPoisson;
  risk.kernel = "blackscholes";
  risk.scale = 512;
  risk.rate_hz = 100.0;
  risk.jobs = 64;
  risk.slo_p99_ms = 50.0;

  TenantSpec batch;
  batch.id = 2;
  batch.name = "batch";
  batch.arrival = ArrivalKind::kClosedLoop;
  batch.kernel = "sgemm";
  batch.scale = 24;
  batch.jobs = 6;
  batch.think_ms = 1.0;

  return generate("cross_check", /*seed=*/7, /*horizon_us=*/120'000,
                  {infer, risk, batch});
}

TEST(MixedReplay, DesAndLiveAgreeOnCompletionsAndOutputBytes) {
  const Trace trace = cross_check_mix(/*with_graph=*/false);
  ASSERT_FALSE(trace.ops.empty());

  DesReplayOptions des_opts;
  des_opts.functional = true;
  des_opts.capture_outputs = true;
  gvm::GvmConfig config;
  ASSERT_TRUE(sched::parse_policy("fair", &config.sched.policy));
  auto des = replay_des(trace, gpu::tesla_c2070(), config, des_opts);
  ASSERT_TRUE(des.ok()) << des.status().to_string();

  LiveReplayOptions live_opts;
  live_opts.sched = config.sched;
  live_opts.transport = "shm";
  live_opts.exec = "serial";
  live_opts.capture_outputs = true;
  auto live = replay_live(trace, live_opts);
  ASSERT_TRUE(live.ok()) << live.status().to_string();
  EXPECT_EQ(live->errors, 0);
  EXPECT_EQ(live->leaked_slots, 0);
  EXPECT_EQ(live->leaked_segments, 0);

  // Identical per-tenant completion counts: the trace pins every open-loop
  // release, and closed-loop budgets are part of the descriptor.
  ASSERT_EQ(des->completed.size(), live->completed.size());
  for (const auto& [tenant, count] : des->completed) {
    ASSERT_TRUE(live->completed.count(tenant)) << "tenant " << tenant;
    EXPECT_EQ(count, live->completed.at(tenant)) << "tenant " << tenant;
    EXPECT_GT(count, 0) << "tenant " << tenant;
  }

  // Bitwise-identical kernel outputs for every functional tenant.
  ASSERT_EQ(des->outputs.size(), live->outputs.size());
  for (const auto& [tenant, bytes] : des->outputs) {
    ASSERT_TRUE(live->outputs.count(tenant)) << "tenant " << tenant;
    const auto& other = live->outputs.at(tenant);
    ASSERT_EQ(bytes.size(), other.size()) << "tenant " << tenant;
    ASSERT_FALSE(bytes.empty()) << "tenant " << tenant;
    EXPECT_EQ(std::memcmp(bytes.data(), other.data(), bytes.size()), 0)
        << "tenant " << tenant << ": DES and live kernel outputs diverge";
  }
}

TEST(MixedReplay, GraphCaptureReplayMatchesVerbLoopOutputs) {
  // The same mix with graph capture on the bursty tenant: captured-graph
  // launches must not change completions or output bytes vs the verb loop.
  const Trace plain = cross_check_mix(/*with_graph=*/false);
  const Trace graphed = cross_check_mix(/*with_graph=*/true);

  LiveReplayOptions opts;
  ASSERT_TRUE(sched::parse_policy("fair", &opts.sched.policy));
  opts.capture_outputs = true;
  auto a = replay_live(plain, opts);
  auto b = replay_live(graphed, opts);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  EXPECT_EQ(a->errors, 0);
  EXPECT_EQ(b->errors, 0);
  for (const auto& [tenant, count] : a->completed) {
    EXPECT_EQ(count, b->completed.at(tenant)) << "tenant " << tenant;
  }
  for (const auto& [tenant, bytes] : a->outputs) {
    const auto& other = b->outputs.at(tenant);
    ASSERT_EQ(bytes.size(), other.size());
    EXPECT_EQ(std::memcmp(bytes.data(), other.data(), bytes.size()), 0)
        << "tenant " << tenant;
  }
}

TEST(MixedReplay, DesReplayIsDeterministic) {
  const Trace trace = cross_check_mix(/*with_graph=*/false);
  DesReplayOptions opts;
  opts.functional = true;
  opts.capture_outputs = true;
  gvm::GvmConfig config;
  ASSERT_TRUE(sched::parse_policy("tq", &config.sched.policy));
  auto a = replay_des(trace, gpu::tesla_c2070(), config, opts);
  auto b = replay_des(trace, gpu::tesla_c2070(), config, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->makespan_ms, b->makespan_ms);
  EXPECT_EQ(a->report.to_json(), b->report.to_json());
  for (const auto& [tenant, bytes] : a->outputs) {
    const auto& other = b->outputs.at(tenant);
    ASSERT_EQ(bytes.size(), other.size());
    EXPECT_EQ(std::memcmp(bytes.data(), other.data(), bytes.size()), 0);
  }
}

TEST(MixedReplay, SloTargetsFlowThroughToReports) {
  const Trace trace = cross_check_mix(/*with_graph=*/false);
  gvm::GvmConfig config;
  auto des = replay_des(trace, gpu::tesla_c2070(), config);
  ASSERT_TRUE(des.ok());
  ASSERT_EQ(des->report.tenants.size(), 3u);
  EXPECT_EQ(des->report.tenants[0].name, "infer");
  EXPECT_EQ(des->report.tenants[0].target.p99_ms, 50.0);
  EXPECT_EQ(des->report.tenants[2].target.p99_ms, 0.0);  // batch: none
  for (const auto& row : des->report.tenants) {
    EXPECT_GT(row.completed, 0) << row.name;
    EXPECT_GT(row.throughput_per_s, 0.0) << row.name;
  }
}

}  // namespace
}  // namespace vgpu::workloads::trace
