// Tests for the multi-tenant workload-trace suite (src/workloads/trace):
// golden round-trip (serialize -> parse -> re-serialize byte-identical),
// malformed/truncated/version-skewed traces rejected with Status (never an
// abort), generator determinism across runs and forked children, the
// job-shape catalog, and the SLO reporter property tests — fairness index
// and percentile aggregates recomputed brute-force from the raw samples
// must match the streaming report exactly.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "workloads/trace/trace.hpp"

namespace vgpu::workloads::trace {
namespace {

// ---------------------------------------------------------------------
// Golden round trip

TEST(TraceFormat, CanonicalMixesRoundTripByteIdentical) {
  for (const std::string& name : canonical_mix_names()) {
    auto trace = canonical_mix(name, /*horizon_us=*/200'000);
    ASSERT_TRUE(trace.ok()) << name;
    const std::string text = trace->serialize();
    auto parsed = parse(text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().to_string();
    EXPECT_EQ(parsed->serialize(), text) << name;
    EXPECT_EQ(parsed->mix, trace->mix);
    EXPECT_EQ(parsed->seed, trace->seed);
    EXPECT_EQ(parsed->tenants.size(), trace->tenants.size());
    EXPECT_EQ(parsed->ops.size(), trace->ops.size());
  }
}

TEST(TraceFormat, RoundTripPreservesDoubleFields) {
  TenantSpec t;
  t.id = 0;
  t.name = "frac";
  t.arrival = ArrivalKind::kPoisson;
  t.rate_hz = 0.1 + 0.2;  // 0.30000000000000004 — needs %.17g fidelity
  t.weight = 1.0 / 3.0;
  t.slo_p99_ms = 12.3456789012345678;
  t.jobs = 2;
  const Trace trace = generate("frac_mix", 7, 100'000, {t});
  auto parsed = parse(trace.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->tenants[0].rate_hz, t.rate_hz);
  EXPECT_EQ(parsed->tenants[0].weight, t.weight);
  EXPECT_EQ(parsed->tenants[0].slo_p99_ms, t.slo_p99_ms);
  EXPECT_EQ(parsed->serialize(), trace.serialize());
}

// ---------------------------------------------------------------------
// Rejection paths: every malformed input is a Status, never an abort.

std::string golden_text() {
  auto trace = canonical_mix("risk_batch", /*horizon_us=*/100'000);
  VGPU_ASSERT(trace.ok());
  return trace->serialize();
}

TEST(TraceFormat, RejectsBadMagic) {
  EXPECT_FALSE(parse("not-a-trace v1\nend\n").ok());
  EXPECT_FALSE(parse("").ok());
}

TEST(TraceFormat, RejectsVersionSkew) {
  std::string text = golden_text();
  const auto pos = text.find(" v1\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, " v2\n");
  const auto parsed = parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().to_string().find("version"), std::string::npos);
}

TEST(TraceFormat, RejectsTruncation) {
  const std::string text = golden_text();
  // Chop anywhere before the `end` trailer: always "truncated", never
  // a crash. Step a prime to hit many offsets cheaply.
  for (std::size_t cut = 1; cut + 4 < text.size(); cut += 97) {
    const auto parsed = parse(text.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
}

TEST(TraceFormat, RejectsTrailingGarbageAfterEnd) {
  EXPECT_FALSE(parse(golden_text() + "op 1 0 99\n").ok());
}

TEST(TraceFormat, RejectsUnknownTenantKeyArrivalAndKernel) {
  TenantSpec t;
  t.id = 0;
  t.name = "a";
  t.jobs = 1;
  const std::string text = generate("m", 1, 1000, {t}).serialize();

  std::string bad = text;
  bad.replace(bad.find("arrival=poisson"), 15, "arrival=psychic");
  EXPECT_FALSE(parse(bad).ok());

  bad = text;
  bad.replace(bad.find("kernel=vecadd"), 13, "kernel=vecsub");
  EXPECT_FALSE(parse(bad).ok());

  bad = text;
  bad.replace(bad.find("name=a"), 6, "nom=a");
  EXPECT_FALSE(parse(bad).ok());
}

TEST(TraceFormat, RejectsDuplicateTenantAndUnknownOpTenant) {
  TenantSpec a;
  a.id = 0;
  a.name = "a";
  a.jobs = 1;
  const std::string text = generate("m", 1, 1000, {a}).serialize();

  const auto line_start = text.find("tenant id=0");
  const auto line_end = text.find('\n', line_start);
  const std::string tenant_line =
      text.substr(line_start, line_end - line_start + 1);
  std::string dup = text;
  dup.insert(line_end + 1, tenant_line);
  EXPECT_FALSE(parse(dup).ok());

  std::string ghost = text;
  ghost.insert(ghost.find("end\n"), "op 500 7 0\n");
  EXPECT_FALSE(parse(ghost).ok());
}

TEST(TraceFormat, RejectsDisorderedAndNonContiguousOps) {
  TenantSpec a;
  a.id = 0;
  a.name = "a";
  a.rate_hz = 2000.0;
  a.jobs = 8;
  const Trace trace = generate("m", 3, 10'000, {a});
  ASSERT_GE(trace.ops.size(), 2u);
  const std::string text = trace.serialize();

  // Swap the first two op lines: t_us decreases.
  const auto first = text.find("\nop ") + 1;
  const auto second = text.find("\nop ", first) + 1;
  const auto third = text.find('\n', second) + 1;
  std::string swapped = text.substr(0, first) +
                        text.substr(second, third - second) +
                        text.substr(first, second - first) +
                        text.substr(third);
  EXPECT_FALSE(parse(swapped).ok());

  // Removing one op line breaks per-tenant seq contiguity.
  std::string gap = text.substr(0, first) + text.substr(second);
  EXPECT_FALSE(parse(gap).ok());
}

TEST(TraceFormat, RejectsOpsOnClosedLoopTenants) {
  TenantSpec batch;
  batch.id = 0;
  batch.name = "batch";
  batch.arrival = ArrivalKind::kClosedLoop;
  batch.jobs = 2;
  std::string text = generate("m", 1, 1000, {batch}).serialize();
  text.insert(text.find("end\n"), "op 10 0 0\n");
  EXPECT_FALSE(parse(text).ok());
}

TEST(TraceFormat, RejectsMangledNumbers) {
  const std::string text = golden_text();
  std::string bad = text;
  bad.replace(bad.find("seed 42"), 7, "seed 4x");
  EXPECT_FALSE(parse(bad).ok());

  bad = text;
  bad.replace(bad.find("scale=2048"), 10, "scale=-2048");
  EXPECT_FALSE(parse(bad).ok());

  bad = text;
  bad.replace(bad.find("workers=2"), 9, "workers=0");
  EXPECT_FALSE(parse(bad).ok());
}

// ---------------------------------------------------------------------
// Generator determinism

TEST(TraceGenerate, SameSeedBitwiseIdentical) {
  for (const std::string& name : canonical_mix_names()) {
    auto a = canonical_mix(name, 300'000, 1234);
    auto b = canonical_mix(name, 300'000, 1234);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->serialize(), b->serialize()) << name;
  }
}

TEST(TraceGenerate, DifferentSeedsDiverge) {
  auto a = canonical_mix("inference_training", 300'000, 1);
  auto b = canonical_mix("inference_training", 300'000, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->serialize(), b->serialize());
}

TEST(TraceGenerate, ForkedChildProducesIdenticalBytes) {
  auto parent = canonical_mix("diurnal_frontend", 250'000, 99);
  ASSERT_TRUE(parent.ok());
  const std::string expect = parent->serialize();

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    auto child = canonical_mix("diurnal_frontend", 250'000, 99);
    const std::string text = child.ok() ? child->serialize() : "";
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t n = write(fds[1], text.data() + off, text.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::string got;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    got.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(got, expect);
}

TEST(TraceGenerate, OpsRespectInvariants) {
  for (const std::string& name : canonical_mix_names()) {
    auto trace = canonical_mix(name, 400'000);
    ASSERT_TRUE(trace.ok());
    std::int64_t prev = 0;
    std::map<int, int> next_seq;
    for (const TraceOp& op : trace->ops) {
      EXPECT_GE(op.t_us, prev);
      EXPECT_LT(op.t_us, trace->horizon_us);
      prev = op.t_us;
      const TenantSpec* t = trace->find_tenant(op.tenant);
      ASSERT_NE(t, nullptr);
      EXPECT_NE(t->arrival, ArrivalKind::kClosedLoop);
      EXPECT_EQ(op.seq, next_seq[op.tenant]++);
    }
    for (const TenantSpec& t : trace->tenants) {
      if (t.arrival == ArrivalKind::kClosedLoop) continue;
      EXPECT_LE(next_seq[t.id], t.jobs) << t.name;
      EXPECT_GT(next_seq[t.id], 0) << t.name;
    }
  }
}

// ---------------------------------------------------------------------
// Job-shape catalog

TEST(JobShape, CatalogCoversParityAndTimingKernels) {
  for (const std::string& name : job_shape_names()) {
    auto shape = job_shape(name, 64);
    ASSERT_TRUE(shape.ok()) << name;
    EXPECT_FALSE(shape->timing_plan.kernels.empty()) << name;
    if (shape->functional) {
      EXPECT_GT(shape->bytes_in, 0u);
      EXPECT_TRUE(static_cast<bool>(shape->fill)) << name;
      EXPECT_TRUE(static_cast<bool>(shape->body)) << name;
    }
  }
  EXPECT_FALSE(job_shape("warp_drive", 64).ok());
  EXPECT_FALSE(job_shape("vecadd", 0).ok());
}

TEST(JobShape, FillIsDeterministicPerKernelScale) {
  auto shape = job_shape("blackscholes", 512);
  ASSERT_TRUE(shape.ok());
  std::vector<std::byte> a(shape->bytes_in), b(shape->bytes_in);
  shape->fill(a);
  shape->fill(b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
  // A different scale draws a different stream.
  auto other = job_shape("blackscholes", 256);
  ASSERT_TRUE(other.ok());
  std::vector<std::byte> c(other->bytes_in);
  other->fill(c);
  EXPECT_NE(std::memcmp(a.data(), c.data(), c.size()), 0);
}

// ---------------------------------------------------------------------
// SLO reporter properties: streaming report == brute force on raw samples.

TEST(SloReport, AggregatesMatchBruteForceExactly) {
  Rng rng(2026);
  obs::SloAggregator agg;
  const int kTenants = 5;
  for (int t = 0; t < kTenants; ++t) {
    agg.declare(t, "t" + std::to_string(t), 1.0 + t,
                obs::SloTarget{2.0, 20.0});
  }
  for (int i = 0; i < 4000; ++i) {
    const int t = static_cast<int>(rng.next_below(kTenants));
    agg.record(t, rng.uniform(0.01, 30.0));
  }
  const double makespan_ms = 1234.5;
  const obs::SloReport report = agg.report(makespan_ms);
  ASSERT_EQ(report.tenants.size(), static_cast<std::size_t>(kTenants));

  std::vector<double> rates;
  for (const obs::TenantSlo& row : report.tenants) {
    const std::vector<double> raw = agg.samples(row.tenant);
    ASSERT_EQ(row.completed, static_cast<std::int64_t>(raw.size()));

    // Brute force, sharing only the canonical percentile rule.
    SampleStats stats(raw);
    EXPECT_EQ(row.p50_ms, stats.percentile(0.50));
    EXPECT_EQ(row.p99_ms, stats.percentile(0.99));
    EXPECT_EQ(row.max_ms, stats.max());
    EXPECT_EQ(row.mean_ms, stats.mean());

    long within = 0;
    for (const double v : raw) {
      if (v <= row.target.p99_ms) ++within;
    }
    EXPECT_EQ(row.attainment_pct,
              100.0 * static_cast<double>(within) /
                  static_cast<double>(raw.size()));
    EXPECT_EQ(row.p50_met, row.p50_ms <= row.target.p50_ms);
    EXPECT_EQ(row.p99_met, row.p99_ms <= row.target.p99_ms);
    EXPECT_EQ(row.throughput_per_s,
              static_cast<double>(row.completed) / (makespan_ms / 1000.0));
    rates.push_back(static_cast<double>(row.completed) / row.weight);
  }
  EXPECT_EQ(report.jain_fairness, obs::jain_index(rates));

  bool all = true;
  for (const auto& row : report.tenants) all = all && row.p50_met && row.p99_met;
  EXPECT_EQ(report.all_met, all);
}

TEST(SloReport, UndeclaredTargetAlwaysAttains) {
  obs::SloAggregator agg;
  agg.declare(0, "free", 1.0, obs::SloTarget{});
  agg.record(0, 1e6);  // horrific latency, but no target declared
  const obs::SloReport report = agg.report(10.0);
  EXPECT_EQ(report.tenants[0].attainment_pct, 100.0);
  EXPECT_TRUE(report.tenants[0].p99_met);
  EXPECT_TRUE(report.all_met);
}

TEST(SloReport, ErrorsAreCountedSeparately) {
  obs::SloAggregator agg;
  agg.declare(0, "flaky", 1.0, obs::SloTarget{0, 5.0});
  agg.record(0, 1.0);
  agg.record_error(0);
  agg.record_error(0);
  const obs::SloReport report = agg.report(10.0);
  EXPECT_EQ(report.tenants[0].completed, 1);
  EXPECT_EQ(report.tenants[0].errors, 2);
}

TEST(SloReport, JainIndexCases) {
  EXPECT_EQ(obs::jain_index({}), 1.0);
  EXPECT_EQ(obs::jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(obs::jain_index({3.0, 3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(obs::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  // Known mid value: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_DOUBLE_EQ(obs::jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
}

TEST(SloReport, ExportMetricsMirrorsReport) {
  obs::SloAggregator agg;
  agg.declare(3, "web", 2.0, obs::SloTarget{1.0, 9.0});
  agg.record(3, 4.0);
  agg.record(3, 6.0);
  obs::Registry registry;
  agg.export_metrics(&registry, "mix", 1000.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("mix.web.p99_ms"), std::string::npos);
  EXPECT_NE(json.find("mix.web.attainment_pct"), std::string::npos);
  EXPECT_NE(json.find("mix.jain_fairness"), std::string::npos);
}

TEST(SloReport, JsonAndTableNameEveryTenant) {
  obs::SloAggregator agg;
  agg.declare(0, "alpha", 1.0, obs::SloTarget{0, 5.0});
  agg.declare(1, "beta", 1.0, obs::SloTarget{});
  agg.record(0, 1.0);
  agg.record(1, 2.0);
  const obs::SloReport report = agg.report(50.0);
  for (const char* name : {"alpha", "beta"}) {
    EXPECT_NE(report.to_json().find(name), std::string::npos);
    EXPECT_NE(report.format_table().find(name), std::string::npos);
  }
}

}  // namespace
}  // namespace vgpu::workloads::trace
