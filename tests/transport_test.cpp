// Conformance and unit tests for the pluggable IPC transport layer: both
// ClientTransport/ServerLane implementations behind the same test body,
// doorbell/wait-strategy machinery, and real cross-process (fork) exercise
// of the shared-memory ring channel.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <new>
#include <thread>

#include "ipc/mqueue.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"

namespace vgpu::ipc {
namespace {

using Clock = std::chrono::steady_clock;

std::string unique_name(const char* tag) {
  return std::string("/vgpu_tt_") + tag + "_" + std::to_string(::getpid());
}

struct Req {
  std::int32_t op = 0;
  std::int32_t seq = 0;
  std::int64_t payload = 0;
};
struct Resp {
  std::int32_t ack = 0;
  std::int32_t seq = 0;
};

// ---------------------------------------------------------------------------
// Unit tests: doorbell, wait strategy, channel block, parsing.
// ---------------------------------------------------------------------------

TEST(Transport, ParseRoundTrip) {
  TransportKind kind = TransportKind::kShmRing;
  EXPECT_TRUE(parse_transport("mq", &kind));
  EXPECT_EQ(kind, TransportKind::kMessageQueue);
  EXPECT_TRUE(parse_transport("mqueue", &kind));
  EXPECT_EQ(kind, TransportKind::kMessageQueue);
  EXPECT_TRUE(parse_transport("shm", &kind));
  EXPECT_EQ(kind, TransportKind::kShmRing);
  EXPECT_TRUE(parse_transport("ring", &kind));
  EXPECT_EQ(kind, TransportKind::kShmRing);
  EXPECT_FALSE(parse_transport("carrier-pigeon", &kind));
  EXPECT_STREQ(transport_name(TransportKind::kMessageQueue), "mqueue");
  EXPECT_STREQ(transport_name(TransportKind::kShmRing), "shm_ring");
}

TEST(Doorbell, RingMovesEpochAndWakesWaiter) {
  Doorbell::Word word;
  Doorbell door(&word);
  const std::uint32_t seen = door.epoch();

  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    // A long park: only a ring() gets us out early.
    door.wait(seen, std::chrono::microseconds(500'000));
    woke.store(door.epoch() != seen);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = Clock::now();
  door.ring();
  waiter.join();
  const auto waited = Clock::now() - t0;
  EXPECT_TRUE(woke.load());
  EXPECT_LT(waited, std::chrono::milliseconds(250));
  EXPECT_NE(door.epoch(), seen);
}

TEST(Doorbell, WaitReturnsOnParkExpiry) {
  Doorbell::Word word;
  Doorbell door(&word);
  const auto t0 = Clock::now();
  const bool moved = door.wait(door.epoch(), std::chrono::microseconds(5000));
  EXPECT_FALSE(moved);
  EXPECT_GE(Clock::now() - t0, std::chrono::microseconds(4000));
}

TEST(WaitStrategy, ImmediatePredicateNeverBlocks) {
  WaitStrategy waiter;
  EXPECT_TRUE(waiter.wait([] { return true; }, nullptr));
  EXPECT_EQ(waiter.stats().blocks, 0);
  // Counted as a hit in whichever pre-park phase ran first (the spin
  // budget collapses to zero on single-CPU hosts).
  EXPECT_EQ(waiter.stats().spin_hits + waiter.stats().yield_hits, 1);
}

TEST(WaitStrategy, DeadlineExpiryReturnsFalse) {
  // Skip straight to the park phase: on a loaded single-CPU host the
  // spin/yield phases alone can outlast the deadline, leaving blocks==0.
  WaitConfig config;
  config.spin = 0;
  config.yields = 0;
  WaitStrategy waiter(config);
  Doorbell::Word word;
  Doorbell door(&word);
  const auto t0 = Clock::now();
  const bool ok = waiter.wait([] { return false; }, &door,
                              Clock::now() + std::chrono::milliseconds(10));
  EXPECT_FALSE(ok);
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(9));
  EXPECT_GT(waiter.stats().blocks, 0);
}

TEST(WaitStrategy, DoorbellRingSatisfiesParkedWait) {
  WaitStrategy waiter;
  Doorbell::Word word;
  Doorbell door(&word);
  std::atomic<bool> ready{false};
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ready.store(true, std::memory_order_release);
    door.ring();
  });
  const bool ok =
      waiter.wait([&] { return ready.load(std::memory_order_acquire); },
                  &door, Clock::now() + std::chrono::seconds(5));
  producer.join();
  EXPECT_TRUE(ok);
}

TEST(ShmChannelBlock, MagicGatesValidity) {
  using Block = ShmChannelBlock<Req, Resp>;
  auto block = std::make_unique<Block>();
  EXPECT_FALSE(block->valid());  // not yet published
  block->publish();
  EXPECT_TRUE(block->valid());
  block->magic.store(0xdeadbeef, std::memory_order_release);
  EXPECT_FALSE(block->valid());
}

// ---------------------------------------------------------------------------
// Conformance suite: the same protocol exercises run against both
// transport implementations.
// ---------------------------------------------------------------------------

/// One transport under test: a client endpoint plus an in-process echo
/// server appropriate for the kind.
class Harness {
 public:
  virtual ~Harness() = default;
  virtual ClientTransport<Req, Resp>& client() = 0;
  virtual ServerLane<Req, Resp>& lane() = 0;
  virtual void start_echo() = 0;
  virtual void stop_echo() = 0;
};

class MqHarness : public Harness {
 public:
  explicit MqHarness(const std::string& name) {
    auto req = MessageQueue<Req>::create(name + "_req");
    auto resp = MessageQueue<Resp>::create(name + "_resp");
    VGPU_ASSERT(req.ok() && resp.ok());
    req_ = std::make_unique<MessageQueue<Req>>(std::move(*req));
    resp_ = std::make_unique<MessageQueue<Resp>>(std::move(*resp));
    chan_ = std::make_unique<MqClientTransport<Req, Resp>>(req_.get(),
                                                           resp_.get());
    lane_ = std::make_unique<MqServerLane<Req, Resp>>(resp_.get());
  }

  ClientTransport<Req, Resp>& client() override { return *chan_; }
  ServerLane<Req, Resp>& lane() override { return *lane_; }

  void start_echo() override {
    echo_ = std::thread([this] {
      for (;;) {
        auto m = req_->receive(std::chrono::milliseconds(50));
        if (!m.ok()) {
          if (stop_.load()) return;
          continue;
        }
        (void)lane_->send(Resp{1, m->seq});
      }
    });
  }
  void stop_echo() override {
    if (!echo_.joinable()) return;
    stop_.store(true);
    echo_.join();
  }

 private:
  std::unique_ptr<MessageQueue<Req>> req_;
  std::unique_ptr<MessageQueue<Resp>> resp_;
  std::unique_ptr<MqClientTransport<Req, Resp>> chan_;
  std::unique_ptr<MqServerLane<Req, Resp>> lane_;
  std::thread echo_;
  std::atomic<bool> stop_{false};
};

class RingHarness : public Harness {
 public:
  using Block = ShmChannelBlock<Req, Resp>;

  explicit RingHarness(const std::string& name) {
    auto shm = SharedMemory::create(
        name + "_ring", sizeof(Block) + kDoorbellRegionSize);
    VGPU_ASSERT(shm.ok());
    shm_ = std::move(*shm);
    block_ = new (shm_.data()) Block();
    block_->publish();
    door_ = new (shm_.data() + sizeof(Block)) Doorbell::Word();
    chan_ = std::make_unique<RingClientTransport<Req, Resp>>(block_, door_);
    lane_ = std::make_unique<RingServerLane<Req, Resp>>(block_);
  }

  ClientTransport<Req, Resp>& client() override { return *chan_; }
  ServerLane<Req, Resp>& lane() override { return *lane_; }

  void start_echo() override {
    echo_ = std::thread([this] {
      WaitStrategy waiter;
      Doorbell door(door_);
      while (!stop_.load(std::memory_order_relaxed)) {
        waiter.wait(
            [this] {
              return lane_->has_request() ||
                     stop_.load(std::memory_order_relaxed);
            },
            &door, Clock::now() + std::chrono::milliseconds(5));
        while (auto m = lane_->try_receive()) {
          (void)lane_->send(Resp{1, m->seq});
        }
      }
    });
  }
  void stop_echo() override {
    if (!echo_.joinable()) return;
    stop_.store(true);
    Doorbell(door_).ring();
    echo_.join();
  }

 private:
  SharedMemory shm_;
  Block* block_ = nullptr;
  Doorbell::Word* door_ = nullptr;
  std::unique_ptr<RingClientTransport<Req, Resp>> chan_;
  std::unique_ptr<RingServerLane<Req, Resp>> lane_;
  std::thread echo_;
  std::atomic<bool> stop_{false};
};

class TransportConformance
    : public ::testing::TestWithParam<TransportKind> {
 protected:
  std::unique_ptr<Harness> make_harness(const char* tag) {
    const std::string name = unique_name(tag);
    if (GetParam() == TransportKind::kMessageQueue) {
      return std::make_unique<MqHarness>(name);
    }
    return std::make_unique<RingHarness>(name);
  }
};

TEST_P(TransportConformance, KindsMatchTheParameter) {
  auto h = make_harness("kind");
  EXPECT_EQ(h->client().kind(), GetParam());
  EXPECT_EQ(h->lane().kind(), GetParam());
}

TEST_P(TransportConformance, EchoRoundTripsPreserveFifoOrder) {
  auto h = make_harness("fifo");
  h->start_echo();
  for (std::int32_t seq = 1; seq <= 32; ++seq) {
    ASSERT_TRUE(h->client().send(Req{7, seq, seq * 10}).ok());
    auto response = h->client().receive(std::chrono::milliseconds(2000));
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_EQ(response->seq, seq);
    EXPECT_EQ(response->ack, 1);
  }
  h->stop_echo();
}

TEST_P(TransportConformance, ReceiveTimesOutUnavailable) {
  auto h = make_harness("timeout");  // no echo server
  const auto t0 = Clock::now();
  auto response = h->client().receive(std::chrono::milliseconds(50));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(40));
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformance,
                         ::testing::Values(TransportKind::kMessageQueue,
                                           TransportKind::kShmRing),
                         [](const auto& info) {
                           return std::string(transport_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Cross-process tests (fork): the ring channel and the raw SpscRing are
// exercised from genuinely separate address spaces, as the live GVM uses
// them.
// ---------------------------------------------------------------------------

TEST(TransportCrossProcess, RingEchoFromForkedChild) {
  using Block = ShmChannelBlock<Req, Resp>;
  const std::string name = unique_name("xring");
  const Bytes size = sizeof(Block) + kDoorbellRegionSize;
  auto shm = SharedMemory::create(name, size);
  ASSERT_TRUE(shm.ok());
  auto* block = new (shm->data()) Block();
  block->publish();
  auto* door_word = new (shm->data() + sizeof(Block)) Doorbell::Word();
  constexpr std::int32_t kCount = 64;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: open the region by name and echo kCount requests.
    auto child_shm = SharedMemory::open(name, size);
    if (!child_shm.ok()) ::_exit(2);
    auto* child_block = reinterpret_cast<Block*>(child_shm->data());
    if (!child_block->valid()) ::_exit(3);
    auto* child_door = reinterpret_cast<Doorbell::Word*>(
        child_shm->data() + sizeof(Block));
    RingServerLane<Req, Resp> lane(child_block);
    WaitStrategy waiter;
    Doorbell door(child_door);
    std::int32_t echoed = 0;
    while (echoed < kCount) {
      waiter.wait([&] { return lane.has_request(); }, &door,
                  Clock::now() + std::chrono::milliseconds(5));
      while (auto m = lane.try_receive()) {
        if (!lane.send(Resp{1, m->seq}).ok()) ::_exit(4);
        ++echoed;
      }
    }
    ::_exit(0);
  }

  RingClientTransport<Req, Resp> chan(block, door_word);
  for (std::int32_t seq = 0; seq < kCount; ++seq) {
    ASSERT_TRUE(chan.send(Req{1, seq, 0}).ok());
    auto response = chan.receive(std::chrono::milliseconds(5000));
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_EQ(response->seq, seq);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(TransportCrossProcess, SpscRingStreamsFromForkedProducer) {
  using Ring = SpscRing<std::int64_t, 1024>;
  const std::string name = unique_name("xspsc");
  auto shm = SharedMemory::create(name, sizeof(Ring));
  ASSERT_TRUE(shm.ok());
  // Freshly created shm is zero-filled, which is a valid empty ring; the
  // placement-new makes the object's lifetime explicit.
  auto* ring = new (shm->data()) Ring();
  constexpr std::int64_t kCount = 200000;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto child_shm = SharedMemory::open(name, sizeof(Ring));
    if (!child_shm.ok()) ::_exit(2);
    auto* child_ring = reinterpret_cast<Ring*>(child_shm->data());
    for (std::int64_t i = 0; i < kCount; ++i) {
      while (!child_ring->push(i)) std::this_thread::yield();
    }
    ::_exit(0);
  }

  std::int64_t expected = 0;
  while (expected < kCount) {
    auto v = ring->pop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);  // strict FIFO, no loss, no duplication
    ++expected;
  }
  EXPECT_FALSE(ring->pop().has_value());
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace vgpu::ipc
