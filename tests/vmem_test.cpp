// Unit tests for the page-granular host-RAM pager: page-table math, the
// clock's pin/second-chance discipline, clean-drop vs dirty-spill
// accounting, write-allocate invalidation, sequential prefetch, shortfall
// behavior at device and ledger exhaustion, client teardown reclamation,
// metric export, and the device.alloc / vmem.pagein fault hooks.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstring>
#include <numeric>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "vmem/page_table.hpp"
#include "vmem/pager.hpp"

namespace vgpu::vmem {
namespace {

constexpr Bytes kPage = 4096;

PagerConfig small_config(Bytes device_pages, Bytes ledger_pages,
                         int prefetch_window = 4) {
  PagerConfig config;
  config.page_size = kPage;
  config.device_capacity = device_pages * kPage;
  config.host_ledger_capacity = ledger_pages * kPage;
  config.prefetch_window = prefetch_window;
  return config;
}

/// Client backing filled with a per-byte pattern derived from `salt`.
std::vector<std::byte> make_backing(std::size_t size, int salt) {
  std::vector<std::byte> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<std::byte>((i * 7 + salt) & 0xFF);
  }
  return bytes;
}

TEST(PageTable, BindSlicesIntoPagesWithShorterTail) {
  PageTable table(kPage);
  std::vector<std::byte> backing(3 * kPage + 100);
  const AllocId id = table.bind(/*client=*/0, backing.data(),
                                static_cast<Bytes>(backing.size()));
  ASSERT_NE(id, 0u);
  Allocation* alloc = table.find(id);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->pages.size(), 4u);
  EXPECT_EQ(table.total_pages(), 4u);
  EXPECT_EQ(table.resident_bytes(), 0);

  auto [full_base, full_len] = table.page_span(*alloc, 1);
  EXPECT_EQ(full_base, backing.data() + kPage);
  EXPECT_EQ(full_len, kPage);
  auto [tail_base, tail_len] = table.page_span(*alloc, 3);
  EXPECT_EQ(tail_base, backing.data() + 3 * kPage);
  EXPECT_EQ(tail_len, 100);
}

TEST(PageTable, DropRefusesPinnedPagesAndUpdatesIndexes) {
  PageTable table(kPage);
  const AllocId a = table.bind(0, nullptr, 2 * kPage);
  const AllocId b = table.bind(0, nullptr, kPage);
  EXPECT_EQ(table.client_allocs(0), (std::vector<AllocId>{a, b}));

  table.find(a)->pages[1].pin_count = 1;
  EXPECT_FALSE(table.drop(a).ok());
  table.find(a)->pages[1].pin_count = 0;
  EXPECT_TRUE(table.drop(a).ok());
  EXPECT_EQ(table.find(a), nullptr);
  EXPECT_EQ(table.total_pages(), 1u);
  EXPECT_EQ(table.client_allocs(0), (std::vector<AllocId>{b}));
  EXPECT_FALSE(table.drop(a).ok());  // already gone
}

TEST(Pager, PinCountsLeadFaultsAndSequentialPrefetch) {
  // 6 pages with a window of 4: page 0 is a lead fault, 1-4 ride the
  // window, page 5 opens a second run.
  Pager pager(small_config(/*device_pages=*/8, /*ledger_pages=*/8));
  auto backing = make_backing(6 * kPage, 1);
  const AllocId id = pager.bind(0, backing.data(), 6 * kPage);

  EXPECT_TRUE(pager.pin_working_set(0));
  EXPECT_TRUE(pager.working_set_resident(0));
  EXPECT_EQ(pager.counters().faults, 2);
  EXPECT_EQ(pager.counters().prefetch_issued, 4);
  EXPECT_EQ(pager.counters().prefetch_hits, 0);
  EXPECT_EQ(pager.resident_bytes(), 6 * kPage);
  EXPECT_EQ(pager.table().pinned_pages(), 6u);

  // Touch marks the prefetched pages hit exactly once.
  pager.touch(id);
  EXPECT_EQ(pager.counters().prefetch_hits, 4);
  pager.touch(id);
  EXPECT_EQ(pager.counters().prefetch_hits, 4);

  pager.unpin(0);
  EXPECT_EQ(pager.table().pinned_pages(), 0u);
  // Re-pinning a resident working set faults nothing.
  EXPECT_TRUE(pager.pin_working_set(0));
  EXPECT_EQ(pager.counters().faults, 2);
  EXPECT_EQ(pager.counters().prefetch_issued, 4);
}

TEST(Pager, ClockEvictsColdPagesAndCleanDropsRestoredOnes) {
  // Device holds exactly one working set: pinning B must page A out.
  Pager pager(small_config(/*device_pages=*/4, /*ledger_pages=*/16));
  auto backing_a = make_backing(4 * kPage, 1);
  auto backing_b = make_backing(4 * kPage, 2);
  const AllocId a = pager.bind(0, backing_a.data(), 4 * kPage);
  pager.bind(1, backing_b.data(), 4 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));
  // First eviction of a fresh page is a dirty spill (no ledger copy yet).
  EXPECT_EQ(pager.counters().page_outs, 4);
  EXPECT_EQ(pager.counters().evicted_pages, 4);
  EXPECT_EQ(pager.counters().clean_drops, 0);
  EXPECT_EQ(pager.ledger_bytes(), 4 * kPage);
  EXPECT_FALSE(pager.working_set_resident(0));
  EXPECT_TRUE(pager.working_set_resident(1));

  // A comes back from the ledger; the restore keeps the slot.
  pager.unpin(1);
  ASSERT_TRUE(pager.pin_working_set(0));
  EXPECT_EQ(pager.counters().page_ins, 4);
  EXPECT_EQ(pager.ledger_bytes(), 8 * kPage);  // B spilled, A's slots kept

  // Re-evicting the unmodified pages reuses the kept copies: clean drops,
  // no second spill copy.
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));
  EXPECT_EQ(pager.counters().clean_drops, 4);
  EXPECT_EQ(pager.counters().page_outs, 8);  // only B's first spill added
  Allocation* alloc_a = pager.table().find(a);
  for (const Page& page : alloc_a->pages) {
    EXPECT_EQ(page.state, PageState::kHost);
    EXPECT_TRUE(page.ledger_valid);
  }
}

TEST(Pager, PinnedPagesAreNeverVictims) {
  Pager pager(small_config(/*device_pages=*/4, /*ledger_pages=*/16));
  auto backing_a = make_backing(4 * kPage, 1);
  auto backing_b = make_backing(2 * kPage, 2);
  pager.bind(0, backing_a.data(), 4 * kPage);
  pager.bind(1, backing_b.data(), 2 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));  // A holds the whole device, pinned
  EXPECT_FALSE(pager.pin_working_set(1));
  EXPECT_EQ(pager.counters().pin_shortfalls, 1);
  EXPECT_EQ(pager.counters().evicted_pages, 0);
  EXPECT_FALSE(pager.working_set_resident(1));
  EXPECT_TRUE(pager.working_set_resident(0));

  // Once A unpins, B's working set fits via eviction.
  pager.unpin(0);
  EXPECT_TRUE(pager.pin_working_set(1));
  EXPECT_EQ(pager.counters().evicted_pages, 2);
}

TEST(Pager, ExhaustedLedgerLimitsEvictionToWhatFits) {
  // One ledger slot: B's pin can spill exactly one of A's pages, then the
  // remaining cold page is a shortfall — never an assert or a lost page.
  Pager pager(small_config(/*device_pages=*/2, /*ledger_pages=*/1));
  auto backing_a = make_backing(2 * kPage, 1);
  auto backing_b = make_backing(2 * kPage, 2);
  pager.bind(0, backing_a.data(), 2 * kPage);
  pager.bind(1, backing_b.data(), 2 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  EXPECT_FALSE(pager.pin_working_set(1));
  EXPECT_EQ(pager.counters().page_outs, 1);
  EXPECT_EQ(pager.counters().pin_shortfalls, 1);
  EXPECT_EQ(pager.ledger_bytes(), kPage);
  EXPECT_EQ(pager.table().resident_pages(), 2u);  // one of A, one of B
}

TEST(Pager, HostWriteInvalidatesSpilledCopies) {
  Pager pager(small_config(/*device_pages=*/2, /*ledger_pages=*/8));
  auto backing_a = make_backing(2 * kPage, 1);
  auto backing_b = make_backing(2 * kPage, 2);
  const AllocId a = pager.bind(0, backing_a.data(), 2 * kPage);
  pager.bind(1, backing_b.data(), 2 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));  // spills A
  EXPECT_EQ(pager.ledger_bytes(), 2 * kPage);

  // Fresh host bytes (SND): the ledger copies are stale, drop them.
  pager.host_write(a);
  EXPECT_EQ(pager.ledger_bytes(), 0);
  pager.unpin(1);
  ASSERT_TRUE(pager.pin_working_set(0));
  // A faulted back from its own backing, not the ledger.
  EXPECT_EQ(pager.counters().page_ins, 0);
}

TEST(Pager, ScrubbedBackingIsRestoredOnEnsureReadableAndShortfall) {
  PagerConfig config = small_config(/*device_pages=*/2, /*ledger_pages=*/8);
  config.scrub_on_evict = true;
  Pager pager(config);
  auto backing_a = make_backing(2 * kPage, 1);
  const auto golden = backing_a;
  auto backing_b = make_backing(2 * kPage, 2);
  const AllocId a = pager.bind(0, backing_a.data(), 2 * kPage);
  pager.bind(1, backing_b.data(), 2 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));  // spills + scrubs A
  EXPECT_EQ(static_cast<unsigned>(backing_a[0]), 0xABu);
  EXPECT_EQ(static_cast<unsigned>(backing_a[2 * kPage - 1]), 0xABu);

  // A host read (STP / result copy) must see the authoritative bytes.
  ASSERT_TRUE(pager.ensure_readable(a).ok());
  EXPECT_EQ(backing_a, golden);
  EXPECT_EQ(pager.counters().host_restores, 2);
  EXPECT_FALSE(pager.working_set_resident(0));  // restore is not a page-in

  EXPECT_FALSE(pager.ensure_readable(9999).ok());
}

TEST(Pager, ReleaseClientReclaimsFramesAndLedger) {
  Pager pager(small_config(/*device_pages=*/4, /*ledger_pages=*/8));
  auto backing_a = make_backing(4 * kPage, 1);
  auto backing_b = make_backing(4 * kPage, 2);
  pager.bind(0, backing_a.data(), 4 * kPage);
  pager.bind(1, backing_b.data(), 4 * kPage);

  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));  // A fully spilled
  // Teardown while B is still pinned: A's ledger slots come back and the
  // reclaimed byte count is reported for the recovery audit.
  EXPECT_EQ(pager.release_client(0), 4 * kPage);
  EXPECT_EQ(pager.ledger_bytes(), 0);
  EXPECT_TRUE(pager.table().client_allocs(0).empty());

  // Releasing the pinned client is tolerated (SIGKILL teardown path).
  EXPECT_EQ(pager.release_client(1), 0);
  EXPECT_EQ(pager.table().total_pages(), 0u);
  EXPECT_EQ(pager.frames().used(), 0);
  EXPECT_EQ(pager.release_client(0), 0);  // idempotent
}

TEST(Pager, TransitionHookObservesInFlightWindow) {
  Pager pager(small_config(/*device_pages=*/2, /*ledger_pages=*/2,
                           /*prefetch_window=*/0));
  auto backing = make_backing(kPage, 1);
  const AllocId id = pager.bind(0, backing.data(), kPage);

  std::vector<PageState> states;
  pager.set_transition_hook(
      [&](AllocId hook_id, std::size_t index, PageState state) {
        EXPECT_EQ(hook_id, id);
        EXPECT_EQ(index, 0u);
        states.push_back(state);
      });
  ASSERT_TRUE(pager.pin_working_set(0));
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], PageState::kInFlight);
  EXPECT_EQ(states[1], PageState::kResident);
}

TEST(Pager, ExportMetricsPublishesCountersAndGauges) {
  Pager pager(small_config(/*device_pages=*/4, /*ledger_pages=*/8));
  auto backing_a = make_backing(4 * kPage, 1);
  auto backing_b = make_backing(4 * kPage, 2);
  pager.bind(0, backing_a.data(), 4 * kPage);
  pager.bind(1, backing_b.data(), 4 * kPage);
  ASSERT_TRUE(pager.pin_working_set(0));
  pager.unpin(0);
  ASSERT_TRUE(pager.pin_working_set(1));

  obs::Registry registry;
  pager.export_metrics(registry);
  const auto counter = [&registry](const char* name) {
    const obs::Counter* c = registry.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : -1;
  };
  const auto gauge = [&registry](const char* name) {
    const obs::Gauge* g = registry.find_gauge(name);
    EXPECT_NE(g, nullptr) << name;
    return g != nullptr ? g->value() : -1.0;
  };
  EXPECT_EQ(counter("vmem.faults"), pager.counters().faults);
  EXPECT_EQ(counter("vmem.page_outs"), 4);
  EXPECT_EQ(counter("vmem.evictions_pages"), 4);
  EXPECT_EQ(counter("vmem.prefetch_issued"), pager.counters().prefetch_issued);
  EXPECT_EQ(counter("vmem.pin_shortfalls"), 0);
  EXPECT_EQ(gauge("vmem.resident_bytes"), 4.0 * kPage);
  EXPECT_EQ(gauge("vmem.ledger_bytes"), 4.0 * kPage);
  EXPECT_EQ(gauge("vmem.pages_total"), 8.0);
  EXPECT_EQ(gauge("gpu.mem.used"), 4.0 * kPage);
  EXPECT_GE(gauge("gpu.mem.high_water"), 4.0 * kPage);
  EXPECT_GE(gauge("gpu.mem.fragmentation_pct"), 0.0);
}

TEST(Pager, InjectedFrameAllocFailuresDegradeToShortfalls) {
  // The first two frame allocations fail: those pages stay cold (counted
  // as a shortfall), the rest fill, and a later pin recovers them once the
  // fault window closes.
  auto plan = fault::FaultPlan::parse("seed=1,fail@device.alloc:limit=2");
  ASSERT_TRUE(plan.ok());
  fault::Injector injector(*plan);
  Pager pager(small_config(/*device_pages=*/8, /*ledger_pages=*/8), &injector);
  auto backing = make_backing(4 * kPage, 1);
  pager.bind(0, backing.data(), 4 * kPage);

  EXPECT_FALSE(pager.pin_working_set(0));
  EXPECT_EQ(pager.counters().frame_alloc_failures, 2);
  EXPECT_EQ(pager.counters().pin_shortfalls, 1);
  EXPECT_EQ(pager.table().resident_pages(), 2u);

  EXPECT_TRUE(pager.pin_working_set(0));
  EXPECT_TRUE(pager.working_set_resident(0));
  EXPECT_EQ(pager.counters().frame_alloc_failures, 2);
}

TEST(Pager, PageInStallPointFiresPerFill) {
  auto plan =
      fault::FaultPlan::parse("seed=3,stall@vmem.pagein:delay_us=500");
  ASSERT_TRUE(plan.ok());
  fault::Injector injector(*plan);
  Pager pager(small_config(/*device_pages=*/4, /*ledger_pages=*/4), &injector);
  auto backing = make_backing(3 * kPage, 1);
  pager.bind(0, backing.data(), 3 * kPage);

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(pager.pin_working_set(0));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(injector.occurrences(fault::Point::kVmemPageIn), 3);
  EXPECT_EQ(injector.fired(fault::Action::kStall), 3);
  EXPECT_GE(elapsed, std::chrono::microseconds(1500));
}

TEST(Pager, HandoffMovesResidencyAndDrainsTheSourceLedger) {
  // Client 0's working set lives on pager A with one page spilled to the
  // ledger and its backing scrubbed; the hand-off must restore the bytes,
  // drain A completely and leave the data faultable-in on pager B.
  Pager a(small_config(/*device_pages=*/2, /*ledger_pages=*/4));
  Pager b(small_config(/*device_pages=*/8, /*ledger_pages=*/4));
  auto backing = make_backing(3 * kPage, 42);
  const auto expected = backing;
  a.bind(0, backing.data(), 3 * kPage);
  ASSERT_FALSE(a.pin_working_set(0));  // 3 pages, 2 frames -> spill traffic
  a.unpin(0);

  auto moved = a.handoff_client(0, b);
  ASSERT_TRUE(moved.ok()) << moved.status().to_string();
  EXPECT_EQ(*moved, 3 * kPage);
  // Source drained to zero: no residency, no ledger bytes, no bindings.
  EXPECT_EQ(a.resident_bytes(), 0);
  EXPECT_EQ(a.ledger_bytes(), 0);
  EXPECT_TRUE(a.table().client_allocs(0).empty());
  EXPECT_EQ(a.counters().handoffs_out, 1);
  EXPECT_EQ(b.counters().handoffs_in, 1);
  EXPECT_EQ(b.counters().bytes_handed_off, 3 * kPage);
  // Backing is bitwise-intact (the spilled + scrubbed page was restored).
  EXPECT_EQ(std::memcmp(backing.data(), expected.data(), backing.size()), 0);
  // Target adopted the bindings cold and can make them resident.
  ASSERT_EQ(b.table().client_allocs(0).size(), 1u);
  EXPECT_TRUE(b.pin_working_set(0));
  EXPECT_TRUE(b.working_set_resident(0));
  EXPECT_EQ(std::memcmp(backing.data(), expected.data(), backing.size()), 0);
}

TEST(Pager, HandoffWithoutBindingsIsNotFound) {
  Pager a(small_config(2, 2));
  Pager b(small_config(2, 2));
  auto moved = a.handoff_client(7, b);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace vgpu::vmem
