// Tests for the pluggable scheduling subsystem (src/sched): per-policy
// unit tests, work-conservation / starvation-freedom properties, admission
// control, and byte-identical trace regression of the refactored GVM
// against the pre-subsystem implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/trace.hpp"
#include "gvm/gvm.hpp"
#include "sched/admission.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::sched {
namespace {

ClientRequest request(int client, Bytes bytes_in, Bytes bytes_out = 0,
                      int priority = 0, double weight = 1.0) {
  ClientRequest r;
  r.client = client;
  r.bytes_in = bytes_in;
  r.bytes_out = bytes_out;
  r.priority = priority;
  r.weight = weight;
  return r;
}

// ---------------------------------------------------------------------------
// BarrierCoFlush
// ---------------------------------------------------------------------------

TEST(BarrierPolicy, HoldsUntilTheFullCohortIsPending) {
  SchedulerConfig config;
  config.policy = Policy::kBarrierCoFlush;
  config.barrier_width = 3;
  auto sched = Scheduler::make(config);
  for (int c = 0; c < 3; ++c) sched->admit(request(c, kMiB), 0);
  sched->enqueue(0, 10);
  EXPECT_TRUE(sched->pick_next(10).empty());
  sched->enqueue(1, 20);
  EXPECT_TRUE(sched->pick_next(20).empty());
  sched->enqueue(2, 30);
  EXPECT_EQ(sched->pick_next(30), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched->stats().batches, 1);
  EXPECT_EQ(sched->stats().grants, 3);
}

TEST(BarrierPolicy, FlushOrderControlsCohortOrder) {
  const Bytes ins[3] = {32 * kMiB, 1 * kMiB, 8 * kMiB};
  const struct {
    FlushOrder order;
    std::vector<int> want;
  } cases[] = {
      {FlushOrder::kFifo, {0, 1, 2}},
      {FlushOrder::kSmallestFirst, {1, 2, 0}},
      {FlushOrder::kLargestFirst, {0, 2, 1}},
  };
  for (const auto& c : cases) {
    SchedulerConfig config;
    config.barrier_width = 3;
    config.flush_order = c.order;
    auto sched = Scheduler::make(config);
    for (int i = 0; i < 3; ++i) {
      sched->admit(request(i, ins[i]), 0);
      sched->enqueue(i, 0);
    }
    EXPECT_EQ(sched->pick_next(0), c.want);
  }
}

TEST(BarrierPolicy, DynamicWidthCapsAtAdmittedPopulation) {
  SchedulerConfig config;
  config.barrier_width = 4;
  config.dynamic_width = true;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  sched->enqueue(1, 0);
  EXPECT_EQ(sched->pick_next(0), (std::vector<int>{0, 1}));
}

TEST(BarrierPolicy, WidthOneDispatchesEachStrImmediately) {
  SchedulerConfig config;
  config.barrier_width = 1;
  auto sched = Scheduler::make(config);
  sched->admit(request(7, kMiB), 0);
  sched->enqueue(7, 0);
  EXPECT_EQ(sched->pick_next(0), std::vector<int>{7});
  EXPECT_TRUE(sched->pick_next(0).empty());
}

// ---------------------------------------------------------------------------
// TimeQuantum
// ---------------------------------------------------------------------------

SchedulerConfig tq_config() {
  SchedulerConfig config;
  config.policy = Policy::kTimeQuantum;
  config.quantum = milliseconds(30.0);
  config.hysteresis = milliseconds(2.0);
  return config;
}

TEST(TimeQuantumPolicy, HolderDispatchesFreelyWithinItsWindow) {
  auto sched = Scheduler::make(tq_config());
  auto* tq = static_cast<TimeQuantum*>(sched.get());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);

  sched->enqueue(0, 0);
  EXPECT_EQ(sched->pick_next(0), std::vector<int>{0});
  EXPECT_EQ(tq->holder(), 0);
  sched->enqueue(1, milliseconds(1.0));  // queued behind the holder
  EXPECT_TRUE(sched->pick_next(milliseconds(1.0)).empty());  // 0 in flight

  // Holder's round drains; its next round dispatches inside the window
  // while client 1 keeps waiting.
  sched->on_complete(0, milliseconds(5.0));
  sched->enqueue(0, milliseconds(5.0));
  EXPECT_EQ(sched->pick_next(milliseconds(5.0)), std::vector<int>{0});
  EXPECT_EQ(sched->stats().quanta_granted, 1);
  EXPECT_EQ(sched->stats().rotations, 0);
}

TEST(TimeQuantumPolicy, OwnershipRotatesAtWindowExpiry) {
  auto sched = Scheduler::make(tq_config());
  auto* tq = static_cast<TimeQuantum*>(sched.get());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->enqueue(1, milliseconds(1.0));

  // Past the 30ms window the holder's next round no longer dispatches;
  // ownership rotates to the FCFS queue head instead.
  sched->on_complete(0, milliseconds(31.0));
  sched->enqueue(0, milliseconds(31.0));
  EXPECT_EQ(sched->pick_next(milliseconds(31.0)), std::vector<int>{1});
  EXPECT_EQ(tq->holder(), 1);
  EXPECT_EQ(sched->stats().rotations, 1);
  EXPECT_EQ(sched->stats().quanta_granted, 2);

  // Client 0 is now queued; it gets the device back when 1's window ends.
  sched->on_complete(1, milliseconds(62.0));
  sched->enqueue(1, milliseconds(62.0));
  EXPECT_EQ(sched->pick_next(milliseconds(62.0)), std::vector<int>{0});
  EXPECT_EQ(tq->holder(), 0);
}

TEST(TimeQuantumPolicy, AntiThrashHysteresisDelaysRotation) {
  auto sched = Scheduler::make(tq_config());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->enqueue(1, milliseconds(1.0));
  sched->on_complete(0, milliseconds(5.0));

  // Holder 0 is idle with a waiter queued: within the 2ms grace the
  // device is NOT handed over...
  EXPECT_TRUE(sched->pick_next(milliseconds(5.5)).empty());
  // ...and the scheduler asks to be polled again when the grace expires.
  const SimTime wake = sched->next_wakeup(milliseconds(5.5));
  EXPECT_EQ(wake, milliseconds(7.0));  // last activity 5ms + 2ms hysteresis
  // An immediate resubmit inside the grace keeps ownership (anti-thrash).
  sched->enqueue(0, milliseconds(6.0));
  EXPECT_EQ(sched->pick_next(milliseconds(6.0)), std::vector<int>{0});
  EXPECT_EQ(sched->stats().rotations, 0);
}

TEST(TimeQuantumPolicy, IdleHolderLosesDeviceAfterHysteresis) {
  auto sched = Scheduler::make(tq_config());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->enqueue(1, milliseconds(1.0));
  sched->on_complete(0, milliseconds(5.0));
  EXPECT_EQ(sched->pick_next(milliseconds(7.0)), std::vector<int>{1});
  EXPECT_EQ(sched->stats().rotations, 1);
}

TEST(TimeQuantumPolicy, ResidentWorkingSetExtendsIdleHoldToTheWindow) {
  auto sched = Scheduler::make(tq_config());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->enqueue(1, milliseconds(1.0));
  sched->on_complete(0, milliseconds(5.0));
  sched->set_residency(0, true);  // pager: 0's working set is on-device

  // Past the plain 2ms hysteresis an idle holder would rotate; a resident
  // working set keeps the device for the full 30ms window instead —
  // rotating would page the set out only to page it straight back.
  EXPECT_TRUE(sched->pick_next(milliseconds(7.5)).empty());
  EXPECT_EQ(sched->stats().resident_holds, 1);
  EXPECT_EQ(sched->next_wakeup(milliseconds(7.5)), milliseconds(30.0));
  // The hold is counted once per ownership, not once per poll.
  EXPECT_TRUE(sched->pick_next(milliseconds(9.0)).empty());
  EXPECT_EQ(sched->stats().resident_holds, 1);

  // Once the pager evicts the set, plain hysteresis applies again.
  sched->set_residency(0, false);
  EXPECT_EQ(sched->pick_next(milliseconds(9.5)), std::vector<int>{1});
  EXPECT_EQ(sched->stats().rotations, 1);
}

TEST(TimeQuantumPolicy, ReleasedHolderFreesTheDevice) {
  auto sched = Scheduler::make(tq_config());
  auto* tq = static_cast<TimeQuantum*>(sched.get());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->on_complete(0, milliseconds(1.0));
  sched->on_release(0, milliseconds(1.0));
  EXPECT_EQ(tq->holder(), -1);
  sched->enqueue(1, milliseconds(1.5));
  EXPECT_EQ(sched->pick_next(milliseconds(1.5)), std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// FairShare (deficit round-robin)
// ---------------------------------------------------------------------------

TEST(FairSharePolicy, DeficitAccountingChargesRoundCost) {
  SchedulerConfig config;
  config.policy = Policy::kFairShare;
  config.drr_quantum = 10.0;
  config.compute_cost_scale = 0.0;
  auto sched = Scheduler::make(config);
  auto* fair = static_cast<FairShare*>(sched.get());
  sched->admit(request(0, 10), 0);  // round cost 10: one pass
  sched->admit(request(1, 25), 0);  // round cost 25: three passes
  sched->enqueue(0, 0);
  sched->enqueue(1, 0);

  // One pass credits 10 to each: client 0 becomes affordable, client 1
  // banks its credit.
  EXPECT_EQ(sched->pick_next(0), std::vector<int>{0});
  EXPECT_DOUBLE_EQ(fair->deficit(1), 10.0);
  EXPECT_DOUBLE_EQ(fair->deficit(0), 0.0);  // spent on grant

  // Two more passes bring client 1 to 30 >= 25.
  sched->on_complete(0, 1);
  EXPECT_EQ(sched->pick_next(1), std::vector<int>{1});
  EXPECT_DOUBLE_EQ(fair->deficit(1), 0.0);
}

TEST(FairSharePolicy, WeightScalesPerPassCredit) {
  SchedulerConfig config;
  config.policy = Policy::kFairShare;
  config.drr_quantum = 10.0;
  config.compute_cost_scale = 0.0;
  auto sched = Scheduler::make(config);
  // Same 40-unit round; client 1 has twice the share.
  sched->admit(request(0, 40, 0, 0, 1.0), 0);
  sched->admit(request(1, 40, 0, 0, 2.0), 0);
  sched->enqueue(0, 0);
  sched->enqueue(1, 0);
  // After min-passes (2: client 1 reaches 40 first) only client 1 is
  // affordable; client 0 sits at 20 of 40.
  EXPECT_EQ(sched->pick_next(0), std::vector<int>{1});
  auto* fair = static_cast<FairShare*>(sched.get());
  EXPECT_DOUBLE_EQ(fair->deficit(0), 20.0);
}

TEST(FairSharePolicy, EqualFlowsAlternateGrants) {
  SchedulerConfig config;
  config.policy = Policy::kFairShare;
  config.drr_quantum = 8.0;
  config.compute_cost_scale = 0.0;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, 8), 0);
  sched->admit(request(1, 8), 0);
  long grants[2] = {0, 0};
  SimTime now = 0;
  for (int round = 0; round < 10; ++round) {
    sched->enqueue(0, now);
    sched->enqueue(1, now);
    for (int id : sched->pick_next(now)) {
      ++grants[id];
      sched->on_complete(id, now + 1);
    }
    now += 2;
  }
  EXPECT_EQ(grants[0], 10);
  EXPECT_EQ(grants[1], 10);
}

// ---------------------------------------------------------------------------
// PriorityAging
// ---------------------------------------------------------------------------

TEST(PriorityAgingPolicy, HigherPriorityRunsFirst) {
  SchedulerConfig config;
  config.policy = Policy::kPriorityAging;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB, 0, /*priority=*/0), 0);
  sched->admit(request(1, kMiB, 0, /*priority=*/5), 0);
  sched->enqueue(0, 0);
  sched->enqueue(1, 0);
  EXPECT_EQ(sched->pick_next(0), std::vector<int>{1});
  // Exclusive: nothing else dispatches while a round is in flight.
  EXPECT_TRUE(sched->pick_next(0).empty());
  sched->on_complete(1, 1);
  EXPECT_EQ(sched->pick_next(1), std::vector<int>{0});
}

TEST(PriorityAgingPolicy, AgingPromotesAStarvedClient) {
  SchedulerConfig config;
  config.policy = Policy::kPriorityAging;
  config.aging_interval = milliseconds(10.0);
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB, 0, /*priority=*/0), 0);
  sched->admit(request(1, kMiB, 0, /*priority=*/5), 0);

  // Client 0 enqueues at t=0 and waits while the high-priority client
  // keeps submitting rounds.
  sched->enqueue(0, 0);
  SimTime now = 0;
  int starved_granted = 0;
  for (int round = 0; round < 8; ++round) {
    sched->enqueue(1, now);
    const auto batch = sched->pick_next(now);
    ASSERT_EQ(batch.size(), 1u);
    if (batch[0] == 0) {
      ++starved_granted;
      break;
    }
    now += milliseconds(9.0);
    sched->on_complete(1, now);
  }
  // After 60ms the waiter's effective priority (0 + 6) beats base 5.
  EXPECT_EQ(starved_granted, 1);
  EXPECT_GE(sched->stats().aging_promotions, 1);
}

// ---------------------------------------------------------------------------
// Properties: every policy is work-conserving and starvation-free.
// ---------------------------------------------------------------------------

class PolicyProperty : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyProperty, AllRoundsEventuallyDispatchAndNobodyStarves) {
  SchedulerConfig config;
  config.policy = GetParam();
  config.barrier_width = 6;
  config.dynamic_width = true;  // population shrinks as clients finish
  config.quantum = milliseconds(5.0);
  config.hysteresis = milliseconds(1.0);
  config.aging_interval = milliseconds(2.0);
  auto sched = Scheduler::make(config);

  constexpr int kClients = 6;
  constexpr int kRounds = 5;
  int rounds_left[kClients];
  bool waiting[kClients] = {};
  for (int c = 0; c < kClients; ++c) {
    rounds_left[c] = kRounds;
    // Heterogeneous population: different sizes, priorities and weights.
    sched->admit(request(c, (1 + c) * kMiB, kMiB / 2, c % 3,
                         1.0 + (c % 2)),
                 0);
  }

  SimTime now = 0;
  long dispatched = 0;
  int remaining = kClients;
  for (int iter = 0; iter < 10'000 && remaining > 0; ++iter) {
    for (int c = 0; c < kClients; ++c) {
      if (rounds_left[c] > 0 && !waiting[c]) {
        sched->enqueue(c, now);
        waiting[c] = true;
      }
    }
    const auto batch = sched->pick_next(now);
    if (batch.empty()) {
      // Starvation-freedom: with rounds pending the scheduler must name
      // a finite wakeup (or have everything in flight, which this
      // synchronous harness never leaves).
      const SimTime wake = sched->next_wakeup(now);
      ASSERT_NE(wake, kTimeInfinity)
          << policy_name(config.policy) << " stalled at t=" << now;
      now = std::max(wake, now + 1);
      continue;
    }
    for (int id : batch) {
      ++dispatched;
      waiting[id] = false;
      now += milliseconds(1.0);  // the round occupies the device
      sched->on_complete(id, now);
      if (--rounds_left[id] == 0) {
        sched->on_release(id, now);
        --remaining;
      }
    }
  }
  EXPECT_EQ(remaining, 0) << policy_name(config.policy);
  EXPECT_EQ(dispatched, static_cast<long>(kClients) * kRounds);
  EXPECT_EQ(sched->stats().grants, dispatched);
  EXPECT_EQ(sched->stats().released, kClients);
  EXPECT_EQ(sched->in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values(Policy::kBarrierCoFlush,
                                           Policy::kTimeQuantum,
                                           Policy::kFairShare,
                                           Policy::kPriorityAging),
                         [](const auto& info) {
                           return std::string(policy_name(info.param));
                         });

TEST(PolicyNames, ParseRoundTrips) {
  for (Policy p : {Policy::kBarrierCoFlush, Policy::kTimeQuantum,
                   Policy::kFairShare, Policy::kPriorityAging}) {
    Policy parsed;
    ASSERT_TRUE(parse_policy(policy_name(p), &parsed)) << policy_name(p);
    EXPECT_EQ(parsed, p);
  }
  Policy ignored;
  EXPECT_FALSE(parse_policy("bogus", &ignored));
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(Admission, OverQuotaRequestsAreRejected) {
  AdmissionConfig config;
  config.capacity = 64 * kMiB;
  config.per_client_quota = 8 * kMiB;
  AdmissionController admission(config);
  EXPECT_EQ(admission.admit(9 * kMiB, 64 * kMiB, {}).action,
            AdmitAction::kReject);
  EXPECT_EQ(admission.admit(8 * kMiB, 64 * kMiB, {}).action,
            AdmitAction::kAdmit);
  EXPECT_EQ(admission.stats().rejected, 1);
  EXPECT_EQ(admission.stats().admitted, 1);
}

TEST(Admission, LargerThanDeviceIsRejectedNotRetried) {
  AdmissionConfig config;
  config.capacity = 16 * kMiB;
  AdmissionController admission(config);
  EXPECT_EQ(admission.admit(17 * kMiB, 16 * kMiB, {}).action,
            AdmitAction::kReject);
}

TEST(Admission, PressureWithoutOversubscriptionBackpressures) {
  AdmissionConfig config;
  config.capacity = 16 * kMiB;
  AdmissionController admission(config);
  AdmissionController::Victim idle{/*client=*/0, 8 * kMiB, /*last_active=*/0};
  const auto decision = admission.admit(8 * kMiB, 4 * kMiB, {idle});
  EXPECT_EQ(decision.action, AdmitAction::kRetry);
  EXPECT_TRUE(decision.evict.empty());
  EXPECT_EQ(admission.stats().backpressured, 1);
}

TEST(Admission, OversubscriptionEvictsLeastRecentlyActiveFirst) {
  AdmissionConfig config;
  config.capacity = 32 * kMiB;
  config.oversubscribe = true;
  AdmissionController admission(config);
  const std::vector<AdmissionController::Victim> victims = {
      {0, 8 * kMiB, milliseconds(30.0)},
      {1, 8 * kMiB, milliseconds(10.0)},  // least recently active
      {2, 8 * kMiB, milliseconds(20.0)},
  };
  const auto decision = admission.admit(20 * kMiB, 4 * kMiB, victims);
  EXPECT_EQ(decision.action, AdmitAction::kAdmit);
  EXPECT_EQ(decision.evict, (std::vector<int>{1, 2}));  // LRU, then enough
  EXPECT_EQ(admission.stats().evictions, 2);
}

TEST(Admission, OversubscriptionWithoutVictimsBackpressures) {
  AdmissionConfig config;
  config.capacity = 32 * kMiB;
  config.oversubscribe = true;
  AdmissionController admission(config);
  EXPECT_EQ(admission.admit(20 * kMiB, 4 * kMiB, {}).action,
            AdmitAction::kRetry);
}

TEST(Admission, PlanEvictionOnlyNamesVictimsWhenShort) {
  AdmissionController admission({/*capacity=*/32 * kMiB});
  AdmissionController::Victim idle{0, 8 * kMiB, 0};
  EXPECT_TRUE(admission.plan_eviction(4 * kMiB, 8 * kMiB, {idle}).empty());
  EXPECT_EQ(admission.plan_eviction(12 * kMiB, 8 * kMiB, {idle}),
            std::vector<int>{0});
}

// ---------------------------------------------------------------------------
// Failure handling (on_failure: dead clients leaving the scheduler)
// ---------------------------------------------------------------------------

TEST(FailurePath, BarrierShrinksWidthSoSurvivorsFlush) {
  SchedulerConfig config;
  config.policy = Policy::kBarrierCoFlush;
  config.barrier_width = 3;
  auto sched = Scheduler::make(config);
  for (int c = 0; c < 3; ++c) sched->admit(request(c, kMiB), 0);
  sched->enqueue(0, 10);
  sched->enqueue(1, 20);
  ASSERT_TRUE(sched->pick_next(30).empty());  // waiting for client 2's STR
  // Client 2 dies before it could STR: the effective width drops to 2 and
  // the survivors' wave releases without it.
  sched->on_failure(2, 40);
  EXPECT_EQ(sched->pick_next(50), (std::vector<int>{0, 1}));
  EXPECT_EQ(sched->stats().failures, 1);
}

TEST(FailurePath, BarrierDropsTheDeadClientsPendingRound) {
  SchedulerConfig config;
  config.policy = Policy::kBarrierCoFlush;
  config.barrier_width = 2;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 10);
  sched->enqueue(1, 20);
  // Client 1 dies with its STR already queued: the pending round must be
  // dropped (never granted as a ghost) and the survivor still flushes.
  sched->on_failure(1, 30);
  EXPECT_EQ(sched->pick_next(40), std::vector<int>{0});
  EXPECT_TRUE(sched->pick_next(50).empty());
}

TEST(FailurePath, BarrierReattachRestoresTheWidth) {
  SchedulerConfig config;
  config.policy = Policy::kBarrierCoFlush;
  config.barrier_width = 2;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->on_failure(1, 10);
  // A re-attach (the crashed client's new incarnation) cancels the width
  // shrink: one pending STR alone must hold again.
  sched->admit(request(1, kMiB), 20);
  sched->enqueue(0, 30);
  EXPECT_TRUE(sched->pick_next(40).empty());
  sched->enqueue(1, 50);
  EXPECT_EQ(sched->pick_next(60), (std::vector<int>{0, 1}));
}

TEST(FailurePath, UnknownClientFailureIsANoOp) {
  SchedulerConfig config;
  config.policy = Policy::kBarrierCoFlush;
  config.barrier_width = 2;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB), 0);
  sched->on_failure(7, 10);  // never admitted
  EXPECT_EQ(sched->stats().failures, 0);
  sched->admit(request(1, kMiB), 20);
  sched->enqueue(0, 30);
  sched->enqueue(1, 40);
  EXPECT_EQ(sched->pick_next(50), (std::vector<int>{0, 1}));
}

TEST(FailurePath, TimeQuantumDeadHolderFreesTheDevice) {
  auto sched = Scheduler::make(tq_config());
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  ASSERT_EQ(sched->pick_next(0), std::vector<int>{0});
  sched->on_complete(0, milliseconds(1.0));
  sched->enqueue(1, milliseconds(1.0));
  // Holder 0 dies mid-window: the waiter must take over without riding
  // out the rest of the 30 ms quantum.
  sched->on_failure(0, milliseconds(2.0));
  EXPECT_EQ(sched->pick_next(milliseconds(3.0)), std::vector<int>{1});
  EXPECT_EQ(sched->stats().failures, 1);
}

TEST(FailurePath, FairShareForgetsTheDeadFlow) {
  SchedulerConfig config;
  config.policy = Policy::kFairShare;
  auto sched = Scheduler::make(config);
  sched->admit(request(0, kMiB), 0);
  sched->admit(request(1, kMiB), 0);
  sched->enqueue(0, 0);
  sched->on_failure(0, 1);  // dies with a pending round
  sched->enqueue(1, 2);
  // Only the surviving flow is ever granted, however often we ask.
  for (SimTime now = 3; now < 6; ++now) {
    for (int id : sched->pick_next(now)) {
      EXPECT_EQ(id, 1);
      sched->on_complete(id, now);
      sched->enqueue(id, now);
    }
  }
  EXPECT_EQ(sched->stats().failures, 1);
}

}  // namespace
}  // namespace vgpu::sched

// ---------------------------------------------------------------------------
// GVM integration: the refactored DES path through the subsystem.
// ---------------------------------------------------------------------------

namespace vgpu::gvm {
namespace {

gpu::DeviceSpec fast_c2070() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(50.0);
  spec.ctx_create_time = milliseconds(5.0);
  spec.ctx_switch_time = milliseconds(20.0);
  return spec;
}

/// Golden regression: the BarrierCoFlush policy must produce the exact
/// event trace of the pre-subsystem GVM (whose flush loop it replaced).
/// The digests below were captured from the seed implementation for a
/// fixed heterogeneous 3-client scenario, one per FlushOrder.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct TraceDigest {
  FlushOrder order;
  std::size_t events;
  std::uint64_t hash;
  SimTime end;
};

TraceDigest run_golden_scenario(FlushOrder order) {
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  gpu::Timeline timeline;
  device.set_timeline(&timeline);
  vcuda::Runtime runtime(sim, device);
  GvmConfig config;
  config.expected_clients = 3;
  config.flush_order = order;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  const Bytes ins[3] = {1 * kMiB, 32 * kMiB, 8 * kMiB};
  const Bytes outs[3] = {512 * kKiB, 4 * kMiB, 1 * kMiB};
  const double flops[3] = {1e4, 4e4, 2e4};
  for (int c = 0; c < 3; ++c) {
    sim.spawn([](des::Simulator& s, Gvm& gvm, int id, Bytes in, Bytes out,
                 double f) -> des::Task<> {
      co_await gvm.ready().wait();
      TaskPlan plan;
      plan.bytes_in = in;
      plan.bytes_out = out;
      gpu::KernelLaunch l;
      l.name = "k" + std::to_string(id);
      l.geometry = gpu::KernelGeometry{8, 128, 16, 0};
      l.cost = gpu::KernelCost{f, 0.0, 1.0};
      plan.kernels = {l};
      VGpuClient client(s, gvm, id);
      co_await client.run_task(std::move(plan), 2);
    }(sim, gvm, c, ins[c], outs[c], flops[c]));
  }
  const SimTime end = sim.run();
  std::string blob;
  for (const gpu::TraceEvent& e : timeline.events()) {
    blob += e.name;
    blob += '|';
    blob += e.category;
    blob += '|';
    blob += e.lane;
    blob += '|';
    blob += std::to_string(e.begin);
    blob += '|';
    blob += std::to_string(e.end);
    blob += '\n';
  }
  return {order, timeline.size(), fnv1a(blob), end};
}

TEST(SchedulerRegression, BarrierTracesAreByteIdenticalToSeedGvm) {
  const TraceDigest golden[] = {
      {FlushOrder::kFifo, 1910u, 0xdcddf7aabf1da630ull, 91016458},
      {FlushOrder::kSmallestFirst, 1381u, 0xc57ab620d4807d36ull, 94406458},
      {FlushOrder::kLargestFirst, 2746u, 0xa4125e8bff60bd78ull, 90566458},
  };
  for (const TraceDigest& want : golden) {
    const TraceDigest got = run_golden_scenario(want.order);
    EXPECT_EQ(got.events, want.events);
    EXPECT_EQ(got.hash, want.hash);
    EXPECT_EQ(got.end, want.end);
  }
}

/// Drives `n` functional vecadd clients through one GVM under `config`.
/// Returns true when every client's output verified.
bool run_vecadd_clients(GvmConfig config, gpu::DeviceSpec spec, int n,
                        long elements, GvmStats* stats_out = nullptr,
                        sched::AdmissionStats* admission_out = nullptr) {
  std::vector<workloads::FunctionalWorkload> instances;
  for (int p = 0; p < n; ++p) {
    instances.push_back(workloads::functional_vecadd(elements));
  }
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  config.expected_clients = n;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  for (int p = 0; p < n; ++p) {
    sim.spawn([](des::Simulator& s, Gvm& gvm,
                 workloads::FunctionalWorkload& w, int id) -> des::Task<> {
      co_await gvm.ready().wait();
      VGpuClient client(s, gvm, id);
      co_await client.run_task(w.plan, w.rounds);
    }(sim, gvm, instances[static_cast<std::size_t>(p)], p));
  }
  sim.run();
  if (stats_out != nullptr) *stats_out = gvm.stats();
  if (admission_out != nullptr) *admission_out = gvm.admission().stats();
  bool ok = true;
  for (auto& w : instances) ok = ok && w.verify();
  return ok;
}

TEST(SchedulerIntegration, OversubscribedEightClientsCompleteWithoutDeadlock) {
  // Aggregate footprint ~12MB on an 8MB device: the admission controller
  // must keep evicting idle residents (SUS) and resuming them (RES) so
  // that all eight clients finish, with correct results.
  gpu::DeviceSpec spec = fast_c2070();
  spec.global_mem = 8 * kMiB;
  GvmConfig config;
  config.use_barriers = false;  // independent clients
  config.auto_suspend_on_pressure = true;
  GvmStats stats;
  sched::AdmissionStats admission;
  ASSERT_TRUE(run_vecadd_clients(config, spec, /*n=*/8,
                                 /*elements=*/131072, &stats, &admission));
  EXPECT_GT(stats.pressure_suspends, 0);
  EXPECT_GT(stats.pressure_resumes, 0);
  EXPECT_GT(admission.evictions, 0);
}

TEST(SchedulerIntegration, TimeQuantumPathProducesCorrectResults) {
  gpu::DeviceSpec spec = fast_c2070();
  GvmConfig config;
  config.sched.policy = sched::Policy::kTimeQuantum;
  config.sched.quantum = milliseconds(5.0);
  ASSERT_TRUE(run_vecadd_clients(config, spec, /*n=*/4, /*elements=*/4096));
}

TEST(SchedulerIntegration, FairSharePathProducesCorrectResults) {
  gpu::DeviceSpec spec = fast_c2070();
  GvmConfig config;
  config.sched.policy = sched::Policy::kFairShare;
  ASSERT_TRUE(run_vecadd_clients(config, spec, /*n=*/4, /*elements=*/4096));
}

TEST(SchedulerIntegration, PriorityAgingPathProducesCorrectResults) {
  gpu::DeviceSpec spec = fast_c2070();
  GvmConfig config;
  config.sched.policy = sched::Policy::kPriorityAging;
  ASSERT_TRUE(run_vecadd_clients(config, spec, /*n=*/4, /*elements=*/4096));
}

TEST(SchedulerIntegration, OverQuotaReqIsDenied) {
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config;
  config.per_client_quota = 4 * kMiB;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  Status seen;
  sim.spawn([](des::Simulator& s, Gvm& gvm, Status& seen) -> des::Task<> {
    co_await gvm.ready().wait();
    VGpuClient client(s, gvm, 0);
    TaskPlan plan;
    plan.bytes_in = 8 * kMiB;  // over the 4MB quota
    seen = co_await client.req(std::move(plan));
  }(sim, gvm, seen));
  sim.run();
  EXPECT_EQ(seen.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(gvm.admission().stats().rejected, 1);
}

TEST(SchedulerIntegration, PressureBackpressuresReqUntilResidentsRelease) {
  // 16MB device, two 12MB clients, no oversubscription: the second REQ
  // must be backpressured (kRetry) until the first client releases, then
  // admitted — and both complete correctly.
  gpu::DeviceSpec spec = fast_c2070();
  spec.global_mem = 16 * kMiB;
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  GvmConfig config;
  config.use_barriers = false;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  auto w0 = workloads::functional_vecadd(1 << 20);  // 8MB in + 4MB out
  auto w1 = workloads::functional_vecadd(1 << 20);
  for (int p = 0; p < 2; ++p) {
    auto& w = p == 0 ? w0 : w1;
    sim.spawn([](des::Simulator& s, Gvm& gvm,
                 workloads::FunctionalWorkload& w, int id) -> des::Task<> {
      co_await gvm.ready().wait();
      co_await s.delay(id * microseconds(50.0));  // stagger arrivals
      VGpuClient client(s, gvm, id);
      co_await client.run_task(w.plan, w.rounds);
    }(sim, gvm, w, p));
  }
  sim.run();
  EXPECT_TRUE(w0.verify());
  EXPECT_TRUE(w1.verify());
  EXPECT_GT(gvm.admission().stats().backpressured, 0);
  EXPECT_EQ(gvm.admission().stats().admitted, 2);
}

}  // namespace
}  // namespace vgpu::gvm
