// Unit tests for the simulated Fermi device: occupancy, cost model, memory
// allocator, context arbitration, copy engines, concurrent kernels.
#include <gtest/gtest.h>

#include <vector>

#include "des/sim.hpp"
#include "gpu/cost.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/occupancy.hpp"
#include "gpu/spec.hpp"

namespace vgpu::gpu {
namespace {

// ---------------------------------------------------------------------------
// Occupancy
// ---------------------------------------------------------------------------

TEST(Occupancy, WarpLimited256Threads) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{/*grid*/ 100, /*threads*/ 256, /*regs*/ 20, /*shmem*/ 0};
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.blocks_per_sm, 6);  // 48 warps / 8 warps-per-block
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kWarps);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
  EXPECT_EQ(occ.device_blocks(spec), 6 * 14);
}

TEST(Occupancy, LargeBlocksGetOnePerSm) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{10, 1024, 20, 0};
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.warps_per_block, 32);
}

TEST(Occupancy, SharedMemoryLimited) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{10, 64, 16, 24 * kKiB};
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.blocks_per_sm, 2);  // 48 KiB / 24 KiB
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMem);
}

TEST(Occupancy, RegisterLimited) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{10, 256, 63, 0};
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.blocks_per_sm, 2);  // 32768 / (63 * 256) = 2
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
}

TEST(Occupancy, BlockCapLimited) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{10, 32, 8, 0};  // tiny blocks
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.blocks_per_sm, 8);  // Fermi hard cap
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kBlocks);
}

TEST(Occupancy, WavesAndFillsDevice) {
  const DeviceSpec spec = tesla_c2070();
  KernelGeometry g{200, 256, 20, 0};  // 84 blocks resident
  const Occupancy occ = compute_occupancy(spec, g);
  EXPECT_EQ(occ.waves(spec, 200), 3);  // ceil(200 / 84)
  EXPECT_TRUE(occ.fills_device(spec, 200));
  EXPECT_FALSE(occ.fills_device(spec, 50));
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

DeviceSpec simple_spec() {
  DeviceSpec spec = tesla_c2070();
  spec.name = "unit-test device";
  spec.sm_count = 4;
  spec.sp_per_sm = 32;
  spec.core_clock_ghz = 1.0;
  spec.flops_per_sp_per_cycle = 1.0;  // device_flops = 128 GF
  spec.dram_bw = gb_per_s(100.0);
  spec.dram_efficiency = 1.0;
  spec.kernel_launch_overhead = 0;
  spec.memcpy_setup_time = 0;
  return spec;
}

KernelLaunch make_launch(long grid, int threads, double flops,
                         double bytes) {
  KernelLaunch l;
  l.name = "test";
  l.geometry = KernelGeometry{grid, threads, 16, 0};
  l.cost = KernelCost{flops, bytes, 1.0};
  return l;
}

TEST(Cost, ComputeBoundFullDeviceChunk) {
  const DeviceSpec spec = simple_spec();
  // 256-thread blocks: 6/SM on Fermi limits; 4 SMs -> 24 blocks resident.
  const KernelLaunch l = make_launch(24, 256, 1e6, 0.0);
  const Occupancy occ = compute_occupancy(spec, l.geometry);
  ASSERT_EQ(occ.blocks_per_sm, 6);
  // Full wave: share = 1; t = 24 blocks * 256 thr * 1e6 flops / 128 GF.
  const double expect_s = 24.0 * 256.0 * 1e6 / 128e9;
  const SimDuration t = chunk_duration(spec, l, 24, 24.0, 24);
  EXPECT_NEAR(to_seconds(t), expect_s, expect_s * 1e-9);
}

TEST(Cost, SmallGridRunsAtPerSmSpeed) {
  const DeviceSpec spec = simple_spec();
  // 2 blocks on a 4-SM device: below saturation, each block runs at its
  // natural (full-SM) rate.
  const KernelLaunch l = make_launch(2, 256, 1e6, 0.0);
  const SimDuration t = chunk_duration(spec, l, 2, 2.0, 2);
  const double expect_s = 256.0 * 1e6 / 32e9;  // block flops / SM rate
  EXPECT_NEAR(to_seconds(t), expect_s, expect_s * 1e-9);
}

TEST(Cost, MemoryBoundChunkUsesDramBandwidth) {
  const DeviceSpec spec = simple_spec();
  // 24 blocks fully resident, 4 KB per thread: mem-bound.
  const KernelLaunch l = make_launch(24, 256, 1.0, 4096.0);
  const SimDuration t = chunk_duration(spec, l, 24, 24.0, 24);
  const double bytes = 24.0 * 256.0 * 4096.0;
  EXPECT_NEAR(to_seconds(t), bytes / 100e9, 1e-9);
}

TEST(Cost, SaturationSlowsChunk) {
  const DeviceSpec spec = simple_spec();
  const KernelLaunch l = make_launch(24, 256, 1e6, 0.0);
  // Same chunk, but co-resident with an equal-demand competitor.
  const SimDuration alone = chunk_duration(spec, l, 12, 12.0, 12);
  const SimDuration contended = chunk_duration(spec, l, 12, 24.0, 24);
  EXPECT_GT(contended, alone);
  EXPECT_NEAR(static_cast<double>(contended) / static_cast<double>(alone),
              2.0, 0.01);
}

TEST(Cost, SoloKernelSumsWaves) {
  const DeviceSpec spec = simple_spec();
  // 48 blocks = exactly 2 full waves of 24.
  const KernelLaunch l = make_launch(48, 256, 1e6, 0.0);
  const SimDuration two_waves = solo_kernel_duration(spec, l);
  const KernelLaunch half = make_launch(24, 256, 1e6, 0.0);
  const SimDuration one_wave = solo_kernel_duration(spec, half);
  EXPECT_NEAR(static_cast<double>(two_waves),
              2.0 * static_cast<double>(one_wave), 10.0);
}

TEST(Cost, ChunkDurationNeverZero) {
  const DeviceSpec spec = simple_spec();
  const KernelLaunch l = make_launch(1, 32, 1.0, 0.0);
  const SimDuration t = chunk_duration(spec, l, 1, 1.0, 1);
  EXPECT_GE(t, 1);
}

TEST(Cost, HostSerialTimeAddsToSoloDuration) {
  const DeviceSpec spec = simple_spec();
  KernelLaunch l = make_launch(24, 256, 1e6, 0.0);
  const SimDuration base = solo_kernel_duration(spec, l);
  l.host_serial_time = milliseconds(25.0);
  EXPECT_EQ(solo_kernel_duration(spec, l) - base, milliseconds(25.0));
}

// ---------------------------------------------------------------------------
// Device memory allocator
// ---------------------------------------------------------------------------

TEST(Allocator, AllocateFreeReuse) {
  DeviceMemoryAllocator alloc(1 * kMiB);
  auto a = alloc.allocate(1000);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.used(), 1024);  // rounded to 256
  auto b = alloc.allocate(2000);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(alloc.free(*a).ok());
  auto c = alloc.allocate(500);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // first fit reuses the hole
}

TEST(Allocator, OutOfMemory) {
  DeviceMemoryAllocator alloc(4096);
  auto a = alloc.allocate(4096);
  ASSERT_TRUE(a.ok());
  auto b = alloc.allocate(1);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kOutOfMemory);
}

TEST(Allocator, CoalescingMergesNeighbors) {
  DeviceMemoryAllocator alloc(64 * kKiB);
  std::vector<DevPtr> ptrs;
  for (int i = 0; i < 8; ++i) {
    auto p = alloc.allocate(4096);
    ASSERT_TRUE(p.ok());
    ptrs.push_back(*p);
  }
  // Free in an interleaved order; everything must coalesce back to one
  // extent.
  for (int i : {1, 3, 5, 7, 0, 2, 4, 6}) {
    ASSERT_TRUE(alloc.free(ptrs[static_cast<std::size_t>(i)]).ok());
  }
  EXPECT_EQ(alloc.used(), 0);
  EXPECT_EQ(alloc.free_extents(), 1u);
  // A full-capacity allocation must now succeed.
  EXPECT_TRUE(alloc.allocate(64 * kKiB).ok());
}

TEST(Allocator, DoubleFreeRejected) {
  DeviceMemoryAllocator alloc(1 * kMiB);
  auto a = alloc.allocate(100);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(alloc.free(*a).ok());
  EXPECT_EQ(alloc.free(*a).code(), ErrorCode::kNotFound);
}

TEST(Allocator, FragmentationThenCompactionViaCoalesce) {
  DeviceMemoryAllocator alloc(10 * 256);
  auto a = alloc.allocate(256);
  auto b = alloc.allocate(256);
  auto c = alloc.allocate(256);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.free(*b).ok());
  // 256-byte hole exists but 512 does not fit there; it comes from the tail.
  auto d = alloc.allocate(512);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, *c);
}

// ---------------------------------------------------------------------------
// Device behaviour
// ---------------------------------------------------------------------------

DeviceSpec fast_spec() {
  DeviceSpec spec = simple_spec();
  spec.device_init_time = milliseconds(100.0);
  spec.ctx_create_time = milliseconds(10.0);
  spec.ctx_switch_time = milliseconds(50.0);
  spec.pcie_h2d_pinned = gb_per_s(1.0);
  spec.pcie_d2h_pinned = gb_per_s(1.0);
  return spec;
}

TEST(Device, DriverInitPaidOnce) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Device& d, des::Simulator& s,
                 std::vector<SimTime>& out) -> des::Task<> {
      (void)co_await d.create_context();
      out.push_back(s.now());
    }(dev, sim, done));
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // init (100 ms) paid once, then three serialized 10 ms creations.
  EXPECT_EQ(done[0], milliseconds(110.0));
  EXPECT_EQ(done[1], milliseconds(120.0));
  EXPECT_EQ(done[2], milliseconds(130.0));
  EXPECT_EQ(dev.stats().ctx_creates, 3);
}

TEST(Device, ContextSwitchChargedBetweenContexts) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId c1 = co_await d.create_context();
    const ContextId c2 = co_await d.create_context();
    // Process 1 task on c1, then process 2 task on c2.
    co_await d.copy(c1, Direction::kHostToDevice, 1000000, true);
    co_await d.copy(c2, Direction::kHostToDevice, 1000000, true);
    out = s.now();
  }(dev, sim, end));
  sim.run();
  EXPECT_EQ(dev.stats().ctx_switches, 1);
  // init 100 + create 20 + copy 1 ms + switch 50 + copy 1 ms (+ 2 ns grace).
  const SimTime expect = milliseconds(100.0 + 20.0 + 1.0 + 50.0 + 1.0);
  EXPECT_NEAR(static_cast<double>(end), static_cast<double>(expect), 100.0);
}

TEST(Device, StickyContextAvoidsMidTaskSwitch) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  // Two processes, each: H2D -> kernel -> D2H on its own context. The
  // device must switch exactly once (after P1's full task), not per-op.
  std::vector<ContextId> ctxs(2);
  des::Barrier ready(sim, 2);
  for (int p = 0; p < 2; ++p) {
    sim.spawn([](Device& d, des::Barrier& bar,
                 std::vector<ContextId>& ctxs, int p) -> des::Task<> {
      ctxs[static_cast<std::size_t>(p)] = co_await d.create_context();
      co_await bar.arrive_and_wait();  // start tasks simultaneously
      const ContextId ctx = ctxs[static_cast<std::size_t>(p)];
      co_await d.copy(ctx, Direction::kHostToDevice, 500000, true);
      KernelLaunch l;
      l.name = "t";
      l.geometry = KernelGeometry{8, 256, 16, 0};
      l.cost = KernelCost{1e5, 0.0, 1.0};
      co_await d.launch_kernel(ctx, l);
      co_await d.copy(ctx, Direction::kDeviceToHost, 500000, true);
    }(dev, ready, ctxs, p));
  }
  sim.run();
  EXPECT_EQ(dev.stats().ctx_switches, 1);
}

TEST(Device, SameContextKernelsRunConcurrently) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  SimTime end = 0;
  // Two small kernels (2 blocks each on a 4-SM device) from one context:
  // they fit side by side, so total time ~= one kernel time.
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    const SimTime start = s.now();
    KernelLaunch l;
    l.name = "small";
    l.geometry = KernelGeometry{2, 256, 16, 0};
    l.cost = KernelCost{1e6, 0.0, 1.0};
    des::CountdownLatch latch(s, 2);
    for (int i = 0; i < 2; ++i) {
      s.spawn([](Device& d, ContextId ctx, KernelLaunch l,
                 des::CountdownLatch& latch) -> des::Task<> {
        co_await d.launch_kernel(ctx, l);
        latch.count_down();
      }(d, ctx, l, latch));
    }
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  EXPECT_EQ(dev.stats().max_open_kernels, 2);
  // Each kernel alone: 256 thr * 1e6 flops / 32 GF(SM rate) = 8 ms.
  const double one = 256.0 * 1e6 / 32e9;
  EXPECT_LT(to_seconds(end), 1.5 * one);
}

TEST(Device, CrossContextKernelsSerialize) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId c1 = co_await d.create_context();
    const ContextId c2 = co_await d.create_context();
    const SimTime start = s.now();
    KernelLaunch l;
    l.name = "small";
    l.geometry = KernelGeometry{2, 256, 16, 0};
    l.cost = KernelCost{1e6, 0.0, 1.0};
    des::CountdownLatch latch(s, 2);
    s.spawn([](Device& d, ContextId ctx, KernelLaunch l,
               des::CountdownLatch& latch) -> des::Task<> {
      co_await d.launch_kernel(ctx, l);
      latch.count_down();
    }(d, c1, l, latch));
    s.spawn([](Device& d, ContextId ctx, KernelLaunch l,
               des::CountdownLatch& latch) -> des::Task<> {
      co_await d.launch_kernel(ctx, l);
      latch.count_down();
    }(d, c2, l, latch));
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  EXPECT_EQ(dev.stats().max_open_kernels, 1);
  EXPECT_EQ(dev.stats().ctx_switches, 1);
  const double one = 256.0 * 1e6 / 32e9;
  // Serial: two kernels + one 50 ms switch.
  EXPECT_GT(to_seconds(end), 2.0 * one + 0.049);
}

TEST(Device, ConcurrentKernelCapRespected) {
  des::Simulator sim;
  DeviceSpec spec = fast_spec();
  spec.max_concurrent_kernels = 4;
  Device dev(sim, spec);
  sim.spawn([](Device& d, des::Simulator& s) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    KernelLaunch l;
    l.name = "tiny";
    l.geometry = KernelGeometry{1, 32, 8, 0};
    l.cost = KernelCost{1e5, 0.0, 1.0};
    des::CountdownLatch latch(s, 10);
    for (int i = 0; i < 10; ++i) {
      s.spawn([](Device& d, ContextId ctx, KernelLaunch l,
                 des::CountdownLatch& latch) -> des::Task<> {
        co_await d.launch_kernel(ctx, l);
        latch.count_down();
      }(d, ctx, l, latch));
    }
    co_await latch.wait();
  }(dev, sim));
  sim.run();
  EXPECT_LE(dev.stats().max_open_kernels, 4);
  EXPECT_EQ(dev.stats().kernels_completed, 10);
}

TEST(Device, CopyEnginesOverlapOppositeDirections) {
  des::Simulator sim;
  Device dev(sim, fast_spec());  // 2 engines, 1 GB/s each way
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    const SimTime start = s.now();
    des::CountdownLatch latch(s, 2);
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, true);
      l.count_down();
    }(d, ctx, latch));
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      co_await d.copy(ctx, Direction::kDeviceToHost, 100 * kMB, true);
      l.count_down();
    }(d, ctx, latch));
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  // Each copy takes 100 ms at 1 GB/s; overlapped they finish in ~100 ms.
  EXPECT_LT(to_ms(end), 120.0);
}

TEST(Device, SingleCopyEngineSerializesDirections) {
  des::Simulator sim;
  DeviceSpec spec = fast_spec();
  spec.copy_engines = 1;
  Device dev(sim, spec);
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    const SimTime start = s.now();
    des::CountdownLatch latch(s, 2);
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, true);
      l.count_down();
    }(d, ctx, latch));
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      co_await d.copy(ctx, Direction::kDeviceToHost, 100 * kMB, true);
      l.count_down();
    }(d, ctx, latch));
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  EXPECT_GT(to_ms(end), 195.0);
}

TEST(Device, SameDirectionCopiesSerialize) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    const SimTime start = s.now();
    des::CountdownLatch latch(s, 2);
    for (int i = 0; i < 2; ++i) {
      s.spawn([](Device& d, ContextId ctx,
                 des::CountdownLatch& l) -> des::Task<> {
        co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, true);
        l.count_down();
      }(d, ctx, latch));
    }
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  EXPECT_GT(to_ms(end), 195.0);  // paper assumption: no intra-direction overlap
}

TEST(Device, PageablePaysPenalty) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  SimDuration pinned_t = 0, pageable_t = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimDuration& pt,
               SimDuration& gt) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    SimTime t0 = s.now();
    co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, true);
    pt = s.now() - t0;
    t0 = s.now();
    co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, false);
    gt = s.now() - t0;
  }(dev, sim, pinned_t, pageable_t));
  sim.run();
  EXPECT_NEAR(static_cast<double>(pageable_t) / static_cast<double>(pinned_t),
              1.8, 0.01);
}

TEST(Device, NoOverlapDeviceSerializesCopyAndKernel) {
  des::Simulator sim;
  DeviceSpec spec = fast_spec();
  spec.concurrent_copy_and_exec = false;
  spec.max_concurrent_kernels = 1;
  Device dev(sim, spec);
  SimTime end = 0;
  sim.spawn([](Device& d, des::Simulator& s, SimTime& out) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    const SimTime start = s.now();
    des::CountdownLatch latch(s, 2);
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      co_await d.copy(ctx, Direction::kHostToDevice, 100 * kMB, true);
      l.count_down();
    }(d, ctx, latch));
    s.spawn([](Device& d, ContextId ctx, des::CountdownLatch& l) -> des::Task<> {
      KernelLaunch k;
      k.name = "t";
      k.geometry = KernelGeometry{8, 256, 16, 0};
      k.cost = KernelCost{1e7, 0.0, 1.0};  // ~51.2 ms total (full device)
      co_await d.launch_kernel(ctx, k);
      l.count_down();
    }(d, ctx, latch));
    co_await latch.wait();
    out = s.now() - start;
  }(dev, sim, end));
  sim.run();
  // Copy 100 ms + kernel 16 ms must not overlap.
  EXPECT_GT(to_ms(end), 112.0);
}


TEST(Device, ExclusiveComputeModeAdmitsOneContext) {
  des::Simulator sim;
  DeviceSpec spec = fast_spec();
  spec.compute_mode = ComputeMode::kExclusive;
  Device dev(sim, spec);
  sim.spawn([](Device& d) -> des::Task<> {
    const ContextId first = co_await d.create_context();
    EXPECT_NE(first, kNullContext);
    const ContextId second = co_await d.create_context();
    EXPECT_EQ(second, kNullContext);  // rejected: exclusive mode
    // Releasing the first context re-opens admission.
    VGPU_ASSERT(d.destroy_context(first).ok());
    const ContextId third = co_await d.create_context();
    EXPECT_NE(third, kNullContext);
  }(dev));
  sim.run();
}

TEST(Device, ProhibitedComputeModeRejectsAll) {
  des::Simulator sim;
  DeviceSpec spec = fast_spec();
  spec.compute_mode = ComputeMode::kProhibited;
  Device dev(sim, spec);
  sim.spawn([](Device& d) -> des::Task<> {
    EXPECT_FALSE(d.context_admission().ok());
    const ContextId ctx = co_await d.create_context();
    EXPECT_EQ(ctx, kNullContext);
  }(dev));
  sim.run();
  EXPECT_EQ(dev.stats().ctx_creates, 0);
}

TEST(Device, ComputeModeNames) {
  EXPECT_STREQ(compute_mode_name(ComputeMode::kDefault), "Default");
  EXPECT_STREQ(compute_mode_name(ComputeMode::kExclusive), "Exclusive");
  EXPECT_STREQ(compute_mode_name(ComputeMode::kProhibited), "Prohibited");
}

TEST(Device, DestroyContextFreesMemory) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  sim.spawn([](Device& d) -> des::Task<> {
    const ContextId ctx = co_await d.create_context();
    auto p1 = d.malloc_device(ctx, 10 * kMB);
    auto p2 = d.malloc_device(ctx, 20 * kMB);
    VGPU_ASSERT(p1.ok() && p2.ok());
    EXPECT_GT(d.memory_used(), 0);
    VGPU_ASSERT(d.destroy_context(ctx).ok());
    EXPECT_EQ(d.memory_used(), 0);
    EXPECT_FALSE(d.context_exists(ctx));
  }(dev));
  sim.run();
}

TEST(Device, MallocOnUnknownContextFails) {
  des::Simulator sim;
  Device dev(sim, fast_spec());
  auto r = dev.malloc_device(42, 100);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace vgpu::gpu
