// Integration tests for the GVM virtualization layer: protocol behaviour,
// functional end-to-end data paths, turnaround invariants, and agreement
// with the analytical model.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/math.hpp"
#include "gvm/experiment.hpp"
#include "gvm/gvm.hpp"
#include "model/model.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::gvm {
namespace {

/// Small, fast device for functional tests: C2070 semantics with shrunken
/// overheads so tests run instantly in virtual time too.
gpu::DeviceSpec fast_c2070() {
  gpu::DeviceSpec spec = gpu::tesla_c2070();
  spec.device_init_time = milliseconds(50.0);
  spec.ctx_create_time = milliseconds(5.0);
  spec.ctx_switch_time = milliseconds(20.0);
  return spec;
}

GvmConfig default_config() { return GvmConfig{}; }

// ---------------------------------------------------------------------------
// Functional end-to-end runs (parameterized across all workloads and both
// execution paths).
// ---------------------------------------------------------------------------

class FunctionalPath
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FunctionalPath, VirtualizedProducesCorrectResults) {
  const auto& [name, nprocs] = GetParam();
  // One workload instance per client: each needs its own output buffers.
  std::vector<workloads::FunctionalWorkload> instances;
  for (int p = 0; p < nprocs; ++p) {
    instances.push_back(workloads::make_functional(name));
  }
  // Drive all clients through one shared GVM.
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = nprocs;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  for (int p = 0; p < nprocs; ++p) {
    sim.spawn([](des::Simulator& s, Gvm& gvm,
                 workloads::FunctionalWorkload& w, int id) -> des::Task<> {
      co_await gvm.ready().wait();
      VGpuClient client(s, gvm, id);
      co_await client.run_task(w.plan, w.rounds);
    }(sim, gvm, instances[static_cast<std::size_t>(p)], p));
  }
  sim.run();
  for (auto& w : instances) {
    EXPECT_TRUE(w.verify()) << w.name << " through GVM";
  }
  EXPECT_EQ(device.stats().ctx_switches, 0);  // single GVM context
}

TEST_P(FunctionalPath, BaselineProducesCorrectResults) {
  const auto& [name, nprocs] = GetParam();
  std::vector<workloads::FunctionalWorkload> instances;
  for (int p = 0; p < nprocs; ++p) {
    instances.push_back(workloads::make_functional(name));
  }
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  des::CountdownLatch done(sim, static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    auto& w = instances[static_cast<std::size_t>(p)];
    sim.spawn([](vcuda::Runtime& rt, workloads::FunctionalWorkload& w,
                 des::CountdownLatch& done) -> des::Task<> {
      auto ctx = co_await rt.create_context();
      vcuda::DeviceBuffer in, out;
      if (w.plan.bytes_in > 0) in = *ctx->malloc(w.plan.bytes_in, true);
      if (w.plan.bytes_out > 0) out = *ctx->malloc(w.plan.bytes_out, true);
      for (int round = 0; round < w.rounds; ++round) {
        if (w.plan.bytes_in > 0) {
          co_await ctx->memcpy_h2d(in, w.plan.input, w.plan.bytes_in);
        }
        for (std::size_t i = 0; i < w.plan.kernels.size(); ++i) {
          const bool last = (i + 1 == w.plan.kernels.size());
          std::function<void()> body;
          if (last && w.plan.kernel_body) {
            body = [&] {
              TaskBuffers buffers{&in, &out};
              w.plan.kernel_body(buffers);
            };
          }
          co_await ctx->launch_sync(w.plan.kernels[i], std::move(body));
        }
        if (w.plan.bytes_out > 0) {
          co_await ctx->memcpy_d2h(w.plan.output, out, w.plan.bytes_out);
        }
      }
      done.count_down();
    }(runtime, w, done));
  }
  sim.run();
  EXPECT_EQ(done.remaining(), 0u);
  for (auto& w : instances) {
    EXPECT_TRUE(w.verify()) << w.name << " baseline";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FunctionalPath,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::functional_workload_names()),
        ::testing::Values(1, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Protocol behaviour
// ---------------------------------------------------------------------------

TEST(GvmProtocol, BarrierFlushesAllStreamsTogether) {
  auto w = workloads::functional_vecadd(1024);
  RunResult r = run_virtualized(fast_c2070(), default_config(), w.plan,
                                /*rounds=*/3, /*nprocs=*/4);
  // With barriers: one flush per round, regardless of client count.
  EXPECT_EQ(r.gvm.flushes, 3);
  EXPECT_EQ(r.device.ctx_switches, 0);
}

TEST(GvmProtocol, NoBarrierFlushesPerClient) {
  auto w = workloads::functional_vecadd(1024);
  GvmConfig config = default_config();
  config.use_barriers = false;
  RunResult r = run_virtualized(fast_c2070(), config, w.plan, 3, 4);
  EXPECT_EQ(r.gvm.flushes, 3 * 4);
}

TEST(GvmProtocol, LongKernelsProduceWaitResponses) {
  workloads::Workload w = workloads::npb_ep(22);  // ~35 ms of compute
  RunResult r = run_virtualized(fast_c2070(), default_config(), w.plan, 1, 2);
  EXPECT_GT(r.client_waits, 0);
  EXPECT_EQ(r.gvm.waits_sent, r.client_waits);
}

TEST(GvmProtocol, StagedByteCountsMatchPlan) {
  auto w = workloads::functional_vecadd(4096);
  RunResult r = run_virtualized(fast_c2070(), default_config(), w.plan, 2, 3);
  EXPECT_EQ(r.gvm.bytes_staged_in, 2 * 3 * w.plan.bytes_in);
  EXPECT_EQ(r.gvm.bytes_staged_out, 2 * 3 * w.plan.bytes_out);
}

TEST(GvmProtocol, ReleaseFreesDeviceMemory) {
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 1;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  auto w = workloads::functional_vecadd(1024);
  sim.spawn([](des::Simulator& s, Gvm& gvm,
               workloads::FunctionalWorkload& w) -> des::Task<> {
    co_await gvm.ready().wait();
    VGpuClient client(s, gvm, 0);
    co_await client.run_task(w.plan, 1);
  }(sim, gvm, w));
  sim.run();
  EXPECT_EQ(device.memory_used(), 0);  // RLS freed both buffers
}





TEST(GvmProtocol, PinnedStagingReservedPerClientAndReleased) {
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 2;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  auto w0 = workloads::functional_vecadd(1024);
  auto w1 = workloads::functional_vecadd(1024);
  Bytes pinned_during = -1;
  des::Barrier sync(sim, 2);
  for (int c = 0; c < 2; ++c) {
    sim.spawn([](des::Simulator& s, Gvm& gvm, vcuda::Runtime& rt,
                 workloads::FunctionalWorkload& w, int id,
                 des::Barrier& sync, Bytes& pinned) -> des::Task<> {
      co_await gvm.ready().wait();
      VGpuClient client(s, gvm, id);
      co_await client.req(w.plan);
      co_await sync.arrive_and_wait();
      if (id == 0) pinned = rt.pinned_ledger().used();
      co_await client.snd();
      co_await client.str();
      co_await client.wait_done();
      co_await client.rcv();
      co_await client.rls();
    }(sim, gvm, runtime, c == 0 ? w0 : w1, c, sync, pinned_during));
  }
  sim.run();
  // Two clients x (8 KiB in + 4 KiB out).
  EXPECT_EQ(pinned_during, 2 * (w0.plan.bytes_in + w0.plan.bytes_out));
  EXPECT_EQ(runtime.pinned_ledger().used(), 0);  // released at RLS
}

TEST(GvmProtocol, FlushOrderPolicyControlsEngineOrder) {
  // Two clients with different transfer sizes; the flush-order policy
  // decides whose H2D hits the engine first.
  auto run_with = [](FlushOrder order) {
    des::Simulator sim;
    gpu::Device device(sim, fast_c2070());
    gpu::Timeline timeline;
    device.set_timeline(&timeline);
    vcuda::Runtime runtime(sim, device);
    GvmConfig config = default_config();
    config.expected_clients = 2;
    config.flush_order = order;
    Gvm gvm(sim, runtime, config);
    gvm.start();
    const Bytes sizes[2] = {1 * kMiB, 32 * kMiB};
    for (int c = 0; c < 2; ++c) {
      sim.spawn([](des::Simulator& s, Gvm& gvm, int id,
                   Bytes bytes) -> des::Task<> {
        co_await gvm.ready().wait();
        TaskPlan plan;
        plan.bytes_in = bytes;
        gpu::KernelLaunch l;
        l.name = "k";
        l.geometry = gpu::KernelGeometry{2, 64, 8, 0};
        l.cost = gpu::KernelCost{1e4, 0.0, 1.0};
        plan.kernels = {l};
        VGpuClient client(s, gvm, id);
        co_await client.run_task(std::move(plan), 1);
      }(sim, gvm, c, sizes[c]));
    }
    sim.run();
    // First recorded H2D copy identifies who went first.
    for (const gpu::TraceEvent& e : timeline.events()) {
      if (e.category == "copy") return e.name;
    }
    return std::string("none");
  };
  EXPECT_NE(run_with(FlushOrder::kSmallestFirst).find("1.00 MiB"),
            std::string::npos);
  EXPECT_NE(run_with(FlushOrder::kLargestFirst).find("32.00 MiB"),
            std::string::npos);
}

TEST(GvmProtocol, WorksUnderExclusiveComputeMode) {
  // Under exclusive mode the native baseline is impossible for N > 1
  // (only one context may exist) — but the GVM serves everyone through
  // its single context.
  gpu::DeviceSpec spec = fast_c2070();
  spec.compute_mode = gpu::ComputeMode::kExclusive;
  auto w = workloads::functional_vecadd(1024);
  const RunResult r = run_virtualized(spec, default_config(), w.plan, 1, 4);
  EXPECT_GT(r.turnaround, 0);
  EXPECT_EQ(r.device.ctx_creates, 1);
  EXPECT_TRUE(w.verify());
}

// ---------------------------------------------------------------------------
// Suspend / resume (vCUDA-style extension)
// ---------------------------------------------------------------------------

TEST(SuspendResume, StatePreservedAcrossSuspend) {
  auto w = workloads::functional_vecadd(2048);
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 1;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  Bytes used_while_suspended = -1;
  sim.spawn([](des::Simulator& s, Gvm& gvm, gpu::Device& device,
               workloads::FunctionalWorkload& w,
               Bytes& used) -> des::Task<> {
    co_await gvm.ready().wait();
    VGpuClient client(s, gvm, 0);
    co_await client.req(w.plan);
    co_await client.snd();
    co_await client.str();
    co_await client.wait_done();
    // Suspend after compute, before retrieving: the results live only in
    // device memory at this point.
    co_await client.suspend();
    used = device.memory_used();
    co_await s.delay(milliseconds(10.0));
    co_await client.resume();
    co_await client.rcv();
    co_await client.rls();
  }(sim, gvm, device, w, used_while_suspended));
  sim.run();
  EXPECT_EQ(used_while_suspended, 0);  // device memory fully released
  EXPECT_TRUE(w.verify());             // results survived the round trip
}

TEST(SuspendResume, SuspendWhileBusyPolls) {
  const workloads::Workload w = workloads::npb_ep(22);
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 1;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  long waits = 0;
  sim.spawn([](des::Simulator& s, Gvm& gvm, const gvm::TaskPlan& plan,
               long& waits) -> des::Task<> {
    co_await gvm.ready().wait();
    VGpuClient client(s, gvm, 0);
    co_await client.req(plan);
    co_await client.snd();
    co_await client.str();
    co_await client.suspend();  // kernel still running: must poll
    waits = client.waits_observed();
    co_await client.resume();
    co_await client.rcv();
    co_await client.rls();
  }(sim, gvm, w.plan, waits));
  sim.run();
  EXPECT_GT(waits, 0);
}

TEST(SuspendResume, FreedMemoryUsableByOtherClients) {
  // Device with just enough memory for one client's buffers: client 0 must
  // suspend before client 1 can be admitted.
  gpu::DeviceSpec spec = fast_c2070();
  spec.global_mem = 16 * kMB;
  const Bytes chunk = 10 * kMB;
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 1;  // no cross-client barrier in this scenario
  Gvm gvm(sim, runtime, config);
  gvm.start();
  bool second_ok = false;
  sim.spawn([](des::Simulator& s, Gvm& gvm, Bytes chunk,
               bool& second_ok) -> des::Task<> {
    co_await gvm.ready().wait();
    TaskPlan plan;
    plan.bytes_in = chunk;
    gpu::KernelLaunch l;
    l.name = "tiny";
    l.geometry = gpu::KernelGeometry{2, 64, 8, 0};
    l.cost = gpu::KernelCost{1e4, 0.0, 1.0};
    plan.kernels = {l};

    VGpuClient first(s, gvm, 0);
    co_await first.req(plan);
    co_await first.snd();
    co_await first.str();
    co_await first.wait_done();
    co_await first.suspend();

    // With first suspended, the same allocation fits for a second client.
    VGpuClient second(s, gvm, 1);
    co_await second.req(plan);
    co_await second.snd();
    co_await second.str();
    co_await second.wait_done();
    co_await second.rcv();
    co_await second.rls();
    second_ok = true;

    co_await first.resume();
    co_await first.rcv();
    co_await first.rls();
  }(sim, gvm, chunk, second_ok));
  sim.run();
  EXPECT_TRUE(second_ok);
  EXPECT_EQ(device.memory_used(), 0);
}



TEST(SuspendResume, ReleaseWhileSuspendedCleansUp) {
  auto w = workloads::functional_vecadd(1024);
  des::Simulator sim;
  gpu::Device device(sim, fast_c2070());
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  config.expected_clients = 1;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  sim.spawn([](des::Simulator& s, Gvm& gvm,
               workloads::FunctionalWorkload& w) -> des::Task<> {
    co_await gvm.ready().wait();
    VGpuClient client(s, gvm, 0);
    co_await client.req(w.plan);
    co_await client.snd();
    co_await client.str();
    co_await client.wait_done();
    co_await client.suspend();
    // Release without resuming: snapshots and staging must be dropped.
    co_await client.rls();
  }(sim, gvm, w));
  sim.run();
  EXPECT_EQ(device.memory_used(), 0);
  EXPECT_EQ(runtime.pinned_ledger().used(), 0);
}

TEST(SuspendResume, AutoSuspendRelievesMemoryPressure) {
  // Device memory holds only two clients' buffers at once; four clients
  // run anyway: the GVM suspends idle residents to admit and flush
  // everyone, transparently resuming them before their own flushes.
  gpu::DeviceSpec spec = fast_c2070();
  spec.global_mem = 64 * kMB;
  const long n = 2 * 1000 * 1000;  // in 16 MB + out 8 MB = 24 MB per client
  constexpr int kClients = 4;

  std::vector<workloads::FunctionalWorkload> instances;
  for (int c = 0; c < kClients; ++c) {
    instances.push_back(workloads::functional_vecadd(n));
  }
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  GvmConfig config = default_config();
  // Clients proceed independently so earlier ones are idle when later
  // ones hit the allocator.
  config.expected_clients = 1;
  config.use_barriers = false;
  config.auto_suspend_on_pressure = true;
  Gvm gvm(sim, runtime, config);
  gvm.start();
  for (int c = 0; c < kClients; ++c) {
    sim.spawn([](des::Simulator& s, Gvm& gvm,
                 workloads::FunctionalWorkload& w, int id) -> des::Task<> {
      co_await gvm.ready().wait();
      VGpuClient client(s, gvm, id);
      co_await client.req(w.plan);
      co_await client.snd();
      co_await client.str();
      co_await client.wait_done();
      co_await client.rcv();
      // Deliberately no RLS until the end: keeps buffers resident so the
      // next client must trigger a pressure suspend.
      co_await s.delay(milliseconds(200.0));
      co_await client.rls();
    }(sim, gvm, instances[static_cast<std::size_t>(c)], c));
  }
  sim.run();
  for (auto& w : instances) {
    EXPECT_TRUE(w.verify());
  }
  EXPECT_GT(gvm.stats().pressure_suspends, 0);
  EXPECT_EQ(device.memory_used(), 0);
}

// ---------------------------------------------------------------------------
// Turnaround invariants (paper Section VI shapes)
// ---------------------------------------------------------------------------

TEST(Turnaround, VirtualizationNeverSlower) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  for (const char* name : {"VectorAdd", "EP"}) {
    const workloads::Workload w = std::string(name) == "VectorAdd"
                                      ? workloads::vector_add(5'000'000)
                                      : workloads::npb_ep(24);
    for (int n : {1, 4, 8}) {
      const RunResult base = run_baseline(spec, w.plan, w.rounds, n);
      const RunResult virt =
          run_virtualized(spec, default_config(), w.plan, w.rounds, n);
      EXPECT_LT(virt.turnaround, base.turnaround)
          << name << " nprocs=" << n;
    }
  }
}

TEST(Turnaround, ComputeIntensiveStaysFlatUnderVirtualization) {
  // Paper Figure 9 (right): EP turnaround is ~constant in N with the GVM
  // because the tiny 4-block grids execute concurrently.
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const workloads::Workload w = workloads::npb_ep(24);
  const RunResult one =
      run_virtualized(spec, default_config(), w.plan, w.rounds, 1);
  const RunResult eight =
      run_virtualized(spec, default_config(), w.plan, w.rounds, 8);
  EXPECT_LT(static_cast<double>(eight.turnaround),
            1.4 * static_cast<double>(one.turnaround));
  EXPECT_GE(eight.device.max_open_kernels, 8);
}

TEST(Turnaround, BaselineGrowsLinearlyWithSwitches) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const workloads::Workload w = workloads::vector_add(5'000'000);
  const RunResult r4 = run_baseline(spec, w.plan, 1, 4);
  const RunResult r8 = run_baseline(spec, w.plan, 1, 8);
  EXPECT_EQ(r4.device.ctx_switches, 3);
  EXPECT_EQ(r8.device.ctx_switches, 7);
  // Slope: one extra task adds ~(Tctx + cycle) (paper Eq. 1).
  const double delta = to_ms(r8.turnaround - r4.turnaround) / 4.0;
  EXPECT_NEAR(delta, to_ms(spec.ctx_switch_time) + 13.6 + 0.4 + 6.7, 8.0);
}

TEST(Turnaround, SingleProcessGainsFromInitElimination) {
  // Paper Section VI: "the performance improvement using one process is due
  // to the elimination of initialization overheads".
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const workloads::Workload w = workloads::vector_add(5'000'000);
  const RunResult base = run_baseline(spec, w.plan, 1, 1);
  const RunResult virt =
      run_virtualized(spec, default_config(), w.plan, 1, 1);
  EXPECT_GT(base.turnaround - virt.turnaround,
            static_cast<SimDuration>(0.8 *
                                     static_cast<double>(
                                         spec.device_init_time)));
}


TEST(Turnaround, VirtualizationIsFairAcrossTheWave) {
  // Uniform SPMD wave: under the GVM, process completion times spread by
  // at most ~one pipeline stage (the dominant transfer), not by a whole
  // task cycle plus context switch as in the native case.
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const workloads::Workload w = workloads::vector_add(10'000'000);
  const RunResult virt =
      run_virtualized(spec, default_config(), w.plan, w.rounds, 8);
  const RunResult base = run_baseline(spec, w.plan, w.rounds, 8);
  ASSERT_EQ(virt.per_process.size(), 8u);
  // GVM spread: the Figure 5 staircase, (N-1) * MAX(Tin, Tout) ~ 190 ms
  // for 80 MB inputs at 2.944 GB/s.
  EXPECT_NEAR(to_ms(virt.fairness_spread()), 7 * 27.2, 10.0);
  // Native spread: the last process waits through 7 cycles + switches --
  // an order of magnitude worse.
  EXPECT_GT(base.fairness_spread(), 5 * virt.fairness_spread());
}

// ---------------------------------------------------------------------------
// Model agreement (paper Table III methodology)
// ---------------------------------------------------------------------------

TEST(ModelAgreement, MeasuredProfileMatchesSpecOverheads) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  const workloads::Workload w = workloads::vector_add();
  const model::ExecutionProfile p =
      gvm::measure_profile(spec, w.plan, 8, w.name);
  // Tinit = device init + 8 serialized context creations.
  EXPECT_NEAR(to_ms(p.t_init),
              to_ms(spec.device_init_time + 8 * spec.ctx_create_time), 1.0);
  EXPECT_NEAR(to_ms(p.t_ctx_switch), to_ms(spec.ctx_switch_time), 1.0);
  // Table II: 400 MB in at ~2.94 GB/s -> ~136 ms; 200 MB out -> ~67 ms.
  EXPECT_NEAR(to_ms(p.t_data_in), 135.9, 3.0);
  EXPECT_NEAR(to_ms(p.t_data_out), 66.7, 2.0);
  EXPECT_EQ(model::classify(p), model::WorkloadClass::kIoIntensive);
}

TEST(ModelAgreement, SpeedupWithinDeviationBands) {
  // Eq. 5 is an upper-bound model: it ignores the GVM's staging copies
  // (dominant for I/O-heavy tasks) and credits no create/compute overlap in
  // the baseline. EP (no data) tracks the model closely; vector addition
  // deviates by the staging overhead — the same direction and a similar
  // magnitude as the paper's Table III (its measured 2.3 vs a consistent
  // Eq. 5 value of 3.62 is a 57% gap; see EXPERIMENTS.md).
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  struct Case {
    workloads::Workload w;
    double band_percent;
  };
  const Case cases[] = {{workloads::vector_add(10'000'000), 50.0},
                        {workloads::npb_ep(26), 20.0}};
  for (const auto& c : cases) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, c.w.plan, 8, c.w.name);
    const RunResult base = run_baseline(spec, c.w.plan, c.w.rounds, 8);
    const RunResult virt =
        run_virtualized(spec, default_config(), c.w.plan, c.w.rounds, 8);
    const double measured = static_cast<double>(base.turnaround) /
                            static_cast<double>(virt.turnaround);
    const double theoretical = model::speedup(p, 8);
    // The model must over-predict (it is an upper bound) ...
    EXPECT_GT(theoretical, measured) << c.w.name;
    // ... but stay within the expected band.
    EXPECT_LT(deviation_percent(theoretical, measured), c.band_percent)
        << c.w.name;
  }
}

}  // namespace
}  // namespace vgpu::gvm
