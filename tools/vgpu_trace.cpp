// vgpu-trace: analyse and merge Chrome trace JSON files emitted by the
// DES timeline (gpu::Timeline) and the live tracer (obs::Tracer).
//
//   vgpu-trace <trace.json> [more.json ...]
//             [--validate] [--merge-out=<file>]
//
// For each input, prints the span count, wall extent, and the per-category
// busy time and max concurrency (the same Timeline::busy_time /
// max_concurrency analysis the DES tests assert on). With several inputs
// the traces are merged onto one timebase (each shifted to t=0, lanes
// prefixed with the file's basename) and the combined analysis is printed;
// --merge-out= writes the merged trace for side-by-side Perfetto viewing.
// --validate only schema-checks each file (non-zero exit on the first bad
// one) — the CI trace-artifact gate.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpu/trace.hpp"
#include "obs/trace_io.hpp"

using namespace vgpu;

namespace {

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

void print_analysis(const gpu::Timeline& timeline) {
  const std::vector<gpu::TraceEvent>& events = timeline.events();
  if (events.empty()) {
    std::printf("  (no events)\n");
    return;
  }
  SimTime begin = events.front().begin;
  SimTime end = events.front().end;
  std::set<std::string> categories;
  std::set<std::string> lanes;
  for (const gpu::TraceEvent& e : events) {
    begin = std::min(begin, e.begin);
    end = std::max(end, e.end);
    categories.insert(e.category);
    lanes.insert(e.lane);
  }
  std::printf("  %zu events on %zu lanes, wall %.3f ms\n", events.size(),
              lanes.size(), to_ms(end - begin));
  std::printf("  %-12s %12s %8s %6s\n", "category", "busy ms", "busy %",
              "maxcc");
  for (const std::string& category : categories) {
    const SimDuration busy = timeline.busy_time(category);
    const double share =
        end > begin ? 100.0 * static_cast<double>(busy) /
                          static_cast<double>(end - begin)
                    : 0.0;
    std::printf("  %-12s %12.3f %7.1f%% %6d\n", category.c_str(),
                to_ms(busy), share, timeline.max_concurrency(category));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string merge_out;
  bool validate_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate_only = true;
    } else if (arg.rfind("--merge-out=", 0) == 0) {
      merge_out = arg.substr(12);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::printf(
        "usage: %s <trace.json> [more.json ...] [--validate] "
        "[--merge-out=<file>]\n",
        argv[0]);
    return argc <= 1 ? 0 : 2;
  }

  if (validate_only) {
    for (const std::string& path : paths) {
      const Status st = obs::validate_chrome_trace(path);
      if (!st.ok()) {
        std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                     st.to_string().c_str());
        return 1;
      }
      std::printf("%s: ok\n", path.c_str());
    }
    return 0;
  }

  std::vector<gpu::Timeline> timelines;
  std::vector<std::string> labels;
  for (const std::string& path : paths) {
    auto timeline = obs::load_chrome_trace(path);
    if (!timeline.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   timeline.status().to_string().c_str());
      return 1;
    }
    std::printf("%s:\n", path.c_str());
    print_analysis(*timeline);
    timelines.push_back(std::move(*timeline));
    labels.push_back(basename_of(path));
  }

  if (timelines.size() > 1 || !merge_out.empty()) {
    const gpu::Timeline merged = obs::merge_timelines(timelines, labels);
    if (timelines.size() > 1) {
      std::printf("merged (%zu traces, common t=0):\n", timelines.size());
      print_analysis(merged);
    }
    if (!merge_out.empty()) {
      const Status st = merged.write_chrome_trace(merge_out);
      if (!st.ok()) {
        std::fprintf(stderr, "merge write failed: %s\n",
                     st.to_string().c_str());
        return 1;
      }
      std::printf("merged trace written to %s\n", merge_out.c_str());
    }
  }
  return 0;
}
