// vgpu-sim: single-command driver for sharing experiments.
//
//   vgpu-sim --workload=<name> [--procs=8] [--mode=<m>] [--device=<d>]
//            [--rounds=N] [--sched=<p>] [--quota-mb=N] [--all-modes]
//            [--model]
//
//   workloads:  vecadd ep mm mg blackscholes cg electrostatics
//   modes:      native | virt | remote | remote10g | vm | merge | live
//   devices:    c2070 (default) | c2050 | gtx480 | c1060
//   schedulers: barrier (default) | tq | fair | prio
//
// `--sched` and `--quota-mb` only affect virtualized runs; any value other
// than the default barrier policy also prints the scheduler counter block.
//
// `--devices=N` (N > 1) puts N modeled GPUs behind the front door and
// `--placement=static|pack|spread|locality` picks the policy routing each
// client to one. In DES mode this runs the DevicePoolGvm (src/gvm/pool):
// per-session turnaround percentiles, pool counters and the per-device
// counter block; `--sessions=` sets re-attach sessions per client (the
// locality policy's signal) and `--rebalance` turns on busiest-to-idlest
// client migration at round boundaries. In live mode (with `--vmem`) the
// same flags shard the pager into N memory domains placed at REQ time;
// the per-device block prints each domain's placements, clients and
// paging counters (rt.device<k>.* / vmem.device<k>.* metric labels).
//
// `--mode=live` runs the workload's kernel for real: an in-process GVM
// server plus `--procs` forked client processes speaking the six-verb
// protocol over actual POSIX IPC. `--transport=mq|shm` picks the control
// plane and `--data-plane=staged|zero_copy` the data plane (both default
// to the paper-faithful setting); the run prints the transport counters.
// `--exec=serial|sharded` picks the kernel execution mode (sharded fans
// each launch out over `--workers` via the src/exec engine and prints the
// exec counter block: shards, steals, overlap bytes, per-worker shares).
// `--clients=N` (live mode) switches to a population run: N client
// *threads* sharing one context (sessions in the O(1) slot table, regions
// pooled in the arena on --transport=shm) drive an open-loop server.
// `--arrival=burst|poisson` spaces the request rounds and `--rate=` sets
// the aggregate poisson arrival rate; the run prints the serve-loop
// counter block (ready-set depth, grants per pump, slots recycled). The
// percentile-reporting harness at scale is bench/load_gen
// (docs/scaling.md).
// `--fault-plan=<spec>` (live mode) arms deterministic fault injection on
// both ends: the server consults the spec's server.* / exec.* / device.*
// rules, every forked client rebuilds the same plan for its ctrl.* and
// kill rules, and SIGKILLed clients count as expected chaos casualties
// (the run reports leases expired and clients reclaimed). The spec
// grammar and a replay how-to live in docs/fault.md.
// `--vmem` (live mode) turns on transparent memory oversubscription: a
// modeled device of `--device-mb=` backs page frames of `--page-size=`
// bytes and cold pages spill to a `--host-ledger-mb=` host ledger, so
// more clients fit than the device holds (docs/memory.md). The run
// prints the vmem counter block: faults, page-ins/outs, prefetch hit
// rate, pin shortfalls, and whole-client evictions (zero by design).
// `--metrics-json=<file>` dumps the obs registry; `--trace-out=<file>`
// enables span tracing and writes a Chrome/Perfetto trace plus the
// measured-vs-model residual report (docs/observability.md).
//
// Examples:
//   vgpu-sim --workload=ep --procs=8 --all-modes
//   vgpu-sim --workload=vecadd --mode=virt --procs=4 --model
//   vgpu-sim --workload=mm --mode=virt --sched=tq --quota-mb=512
//   vgpu-sim --workload=vecadd --mode=live --procs=4 --transport=shm
//            --data-plane=zero_copy
//   vgpu-sim --workload=mm --mode=live --procs=2 --exec=sharded --workers=4
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/flags.hpp"
#include "fault/fault.hpp"
#include "gvm/experiment.hpp"
#include "gvm/pool.hpp"
#include "obs/obs.hpp"
#include "obs/residuals.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"
#include "workloads/trace/replay.hpp"
#include "workloads/trace/trace.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

namespace {

workloads::Workload select_workload(const std::string& name) {
  if (name == "vecadd") return workloads::vector_add();
  if (name == "ep") return workloads::npb_ep();
  if (name == "mm") return workloads::matmul();
  if (name == "mg") return workloads::npb_mg();
  if (name == "blackscholes") return workloads::black_scholes();
  if (name == "cg") return workloads::npb_cg();
  if (name == "electrostatics") return workloads::electrostatics();
  std::fprintf(stderr,
               "unknown workload '%s' (try: vecadd ep mm mg blackscholes "
               "cg electrostatics)\n",
               name.c_str());
  std::exit(2);
}

gpu::DeviceSpec select_device(const std::string& name) {
  if (name == "c2070") return gpu::tesla_c2070();
  if (name == "c2050") return gpu::tesla_c2050();
  if (name == "gtx480") return gpu::gtx480();
  if (name == "c1060") return gpu::tesla_c1060();
  std::fprintf(stderr,
               "unknown device '%s' (try: c2070 c2050 gtx480 c1060)\n",
               name.c_str());
  std::exit(2);
}

/// Runs one sharing mode. For "virt" the full result (scheduler and
/// admission counters included) is copied into `*virt_result` when the
/// caller asks for it.
SimDuration run_mode(const std::string& mode, const gpu::DeviceSpec& spec,
                     const gvm::GvmConfig& gvm_config,
                     const workloads::Workload& w, int rounds, int procs,
                     gvm::RunResult* virt_result = nullptr) {
  if (mode == "native") {
    return gvm::run_baseline(spec, w.plan, rounds, procs).turnaround;
  }
  if (mode == "virt") {
    gvm::RunResult r =
        gvm::run_virtualized(spec, gvm_config, w.plan, rounds, procs);
    const SimDuration turnaround = r.turnaround;
    if (virt_result != nullptr) *virt_result = std::move(r);
    return turnaround;
  }
  if (mode == "remote" || mode == "remote10g") {
    baselines::RemoteGpuConfig config;
    if (mode == "remote10g") config.network_bw = 1.25e9;
    return baselines::run_remote_gpu(spec, config, w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "vm") {
    return baselines::run_vm_passthrough(spec, baselines::VmConfig{},
                                         w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "merge") {
    return baselines::run_kernel_merge(spec, w.plan, rounds, procs)
        .turnaround;
  }
  std::fprintf(stderr,
               "unknown mode '%s' (try: native virt remote remote10g vm "
               "merge)\n",
               mode.c_str());
  std::exit(2);
}

/// What one live client runs: a builtin kernel with its params and data
/// footprint, sized so a full --procs wave finishes in well under a second.
struct LiveKernelPlan {
  const char* kernel = nullptr;
  std::int64_t params[4] = {};
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
};

LiveKernelPlan live_plan(const std::string& workload) {
  LiveKernelPlan plan;
  if (workload == "vecadd") {
    const long n = 1 << 20;
    plan = {"vecadd", {n, 0, 0, 0}, 2 * n * 4, n * 4};
  } else if (workload == "mm") {
    const long n = 256;
    plan = {"sgemm", {n, 0, 0, 0}, 2 * n * n * 4, n * n * 4};
  } else if (workload == "mg") {
    const long n = 32;
    const Bytes cells = static_cast<Bytes>(n) * n * n;
    plan = {"mg_vcycle", {n, 2, 0, 0}, cells * 8, cells * 8};
  } else if (workload == "blackscholes") {
    const long n = 1 << 18;
    plan = {"blackscholes", {n, 0, 0, 0}, 3 * n * 4, 2 * n * 4};
  } else if (workload == "ep") {
    plan = {"ep", {16, 8, 0, 0}, 0,
            static_cast<Bytes>(sizeof(kernels::EpResult))};
  } else if (workload == "electrostatics") {
    const long natoms = 1024, nx = 64, ny = 64;
    plan = {"coulomb_slab",
            {natoms, nx, ny, 0},
            natoms * static_cast<Bytes>(sizeof(kernels::Atom)),
            nx * ny * 4};
  } else {
    std::fprintf(stderr,
                 "workload '%s' has no live kernel (try: vecadd mm mg "
                 "blackscholes ep electrostatics)\n",
                 workload.c_str());
    std::exit(2);
  }
  return plan;
}

/// Per-client footprint for `--clients=` population runs: the same
/// kernels at small sizes, so thousands of concurrent sessions fit one
/// pooled arena (the full-size plans are per-client MBs).
LiveKernelPlan live_population_plan(const std::string& workload) {
  LiveKernelPlan plan;
  if (workload == "vecadd") {
    const long n = 4096;
    plan = {"vecadd", {n, 0, 0, 0}, 2 * n * 4, n * 4};
  } else if (workload == "mm") {
    const long n = 32;
    plan = {"sgemm", {n, 0, 0, 0}, 2 * n * n * 4, n * n * 4};
  } else if (workload == "mg") {
    const long n = 8;
    const Bytes cells = static_cast<Bytes>(n) * n * n;
    plan = {"mg_vcycle", {n, 2, 0, 0}, cells * 8, cells * 8};
  } else if (workload == "blackscholes") {
    const long n = 4096;
    plan = {"blackscholes", {n, 0, 0, 0}, 3 * n * 4, 2 * n * 4};
  } else if (workload == "ep") {
    plan = {"ep", {8, 4, 0, 0}, 0,
            static_cast<Bytes>(sizeof(kernels::EpResult))};
  } else if (workload == "electrostatics") {
    const long natoms = 128, nx = 16, ny = 16;
    plan = {"coulomb_slab",
            {natoms, nx, ny, 0},
            natoms * static_cast<Bytes>(sizeof(kernels::Atom)),
            nx * ny * 4};
  } else {
    std::fprintf(stderr,
                 "workload '%s' has no live kernel (try: vecadd mm mg "
                 "blackscholes ep electrostatics)\n",
                 workload.c_str());
    std::exit(2);
  }
  return plan;
}

void print_live_stats(const rt::RtServer& server);

/// `--devices=N` DES run: the DevicePoolGvm front door over N modeled
/// GPUs (src/gvm/pool). Prints per-session turnaround percentiles, the
/// pool counter block and the per-device placement/residual block.
int run_pool_mode(const Flags& flags, const workloads::Workload& w,
                  const gpu::DeviceSpec& spec, int devices, int procs,
                  int rounds, const gvm::GvmConfig& gvm_config) {
  gvm::PoolConfig config;
  config.gvm = gvm_config;
  if (flags.has("placement") &&
      !sched::parse_placement(flags.get_string("placement"),
                              &config.placement.policy)) {
    std::fprintf(stderr,
                 "unknown placement '%s' (try: static pack spread "
                 "locality)\n",
                 flags.get_string("placement").c_str());
    return 2;
  }
  config.rebalance = flags.get_bool("rebalance");
  const int sessions =
      static_cast<int>(flags.get_long("sessions", 1));
  std::vector<gvm::PoolClientSpec> clients;
  for (int i = 0; i < procs; ++i) {
    gvm::PoolClientSpec client;
    client.plan = w.plan;
    client.rounds = rounds;
    client.sessions = sessions;
    client.think = microseconds(100.0);
    clients.push_back(client);
  }
  const std::vector<gpu::DeviceSpec> specs(
      static_cast<std::size_t>(devices), spec);
  const gvm::PoolRunResult r = gvm::run_pool(specs, config, clients);
  std::printf("  %-10s %10.1f ms  [%d devices, %s placement, "
              "rebalance %s]\n",
              "pool", to_ms(r.makespan), devices,
              sched::placement_name(config.placement.policy),
              config.rebalance ? "on" : "off");
  std::printf("  sessions %zu: p95 %.2f ms, mean %.2f ms\n",
              r.session_seconds.size(), r.p95_seconds() * 1e3,
              r.mean_seconds() * 1e3);
  std::printf("  pool: %ld placements (%ld warm, %ld cold), %ld installs, "
              "%ld migrations (%ld bounced, %ld dropped), %lld B moved\n",
              r.pool.placements, r.pool.warm_hits, r.pool.cold_moves,
              r.pool.installs, r.pool.migrations, r.pool.bounced_migrations,
              r.pool.failed_migrations,
              static_cast<long long>(r.pool.migrated_bytes));
  for (std::size_t d = 0; d < static_cast<std::size_t>(devices); ++d) {
    std::printf("  device %zu: placements %ld, residual %lld B / %zu "
                "sched clients\n",
                d, r.pool.per_device_placements[d],
                static_cast<long long>(r.residual_device_bytes[d]),
                r.residual_sched_clients[d]);
  }
  return 0;
}

/// `--clients=N` population run: N client *threads* through one shared
/// RtClientContext (three kernel objects for the whole population, not
/// 3N) against an open-loop server — no SPMD barrier, sessions slotted
/// into the O(1) table, regions pooled in the arena on the shm
/// transport. `--arrival=` spaces the request rounds: `burst` fires
/// every client together, `poisson` draws per-client exponential gaps
/// at an aggregate `--rate=` arrivals/sec (default 4x clients). The
/// heavier open-loop harness with latency percentiles is bench/load_gen
/// (docs/scaling.md).
int run_live_population(const Flags& flags, rt::RtServerConfig config,
                        const std::string& workload_name, int clients,
                        int rounds, ipc::TransportKind transport) {
  const std::string arrival = flags.get_string("arrival", "burst");
  if (arrival != "burst" && arrival != "poisson") {
    std::fprintf(stderr, "unknown arrival '%s' (try: burst poisson)\n",
                 arrival.c_str());
    return 2;
  }
  const double rate = static_cast<double>(
      flags.get_long("rate", 4L * clients));
  const LiveKernelPlan plan = live_population_plan(workload_name);
  const bool ring = transport == ipc::TransportKind::kShmRing;
  if (!ring && clients > 128) {
    std::fprintf(stderr,
                 "warning: --transport=mq opens one response queue per "
                 "client; fs.mqueue.queues_max will likely cap the "
                 "population (use --transport=shm)\n");
  }

  config.expected_clients = 1;  // open loop: no SPMD wave
  config.max_sessions = clients + 64;
  if (ring) {
    const Bytes slice = rt::vsm_region_size(
        ipc::kTransportCapMqueue | ipc::kTransportCapShmRing,
        plan.bytes_in, plan.bytes_out);
    config.arena_size =
        static_cast<Bytes>(clients + 64) * (slice + 128) * 2;
  }
  config.lease_timeout = std::chrono::milliseconds(30000);
  config.lease_check_interval = std::chrono::milliseconds(20);
  config.release_linger = std::chrono::milliseconds(20);
  rt::RtServer server(config, rt::builtin_registry());
  const Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "live server start failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  auto ctx = rt::RtClientContext::open(config.prefix);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context open failed: %s\n",
                 ctx.status().to_string().c_str());
    return 1;
  }
  auto kid = rt::builtin_registry().id_of(plan.kernel);
  if (!kid.ok()) return 1;

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<long> completed{0};
  std::atomic<long> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int id = 0; id < clients; ++id) {
    threads.emplace_back([&, id] {
      rt::RtClientOptions options;
      options.transport = transport;
      options.arena = ring;
      options.op_timeout = std::chrono::milliseconds(10000);
      options.max_retries = 8;
      auto client = rt::RtClient::connect(*ctx, id, plan.bytes_in,
                                          plan.bytes_out, options);
      if (!client.ok() || !client->req(*kid, plan.params).ok()) {
        failed.fetch_add(1);
        return;
      }
      if (plan.bytes_in > 0) {  // arena regions exist only post-REQ
        auto* in = reinterpret_cast<float*>(client->input().data());
        for (Bytes i = 0; i < plan.bytes_in / 4; ++i) {
          in[i] = 0.25f * static_cast<float>(i % 64 + 1);
        }
      }
      std::mt19937_64 rng(42ull * 1000003ull + static_cast<unsigned>(id));
      std::exponential_distribution<double> gap(
          rate / static_cast<double>(clients));
      for (int round = 0; round < rounds; ++round) {
        if (arrival == "poisson") {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(gap(rng)));
        }
        if (!client->snd().ok() || !client->str().ok() ||
            !client->wait_done().ok() || !client->rcv().ok()) {
          failed.fetch_add(1);
          return;
        }
        completed.fetch_add(1);
      }
      if (!client->rls().ok()) failed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  std::printf("  %-10s %10.1f ms  [%d clients, %s arrivals, %s/%s, "
              "kernel %s]\n",
              "live", wall_ms, clients, arrival.c_str(),
              ipc::transport_name(transport),
              rt::data_plane_name(config.data_plane), plan.kernel);
  std::printf("  open loop: %ld/%ld rounds completed, %ld client "
              "failures\n",
              completed.load(), static_cast<long>(clients) * rounds,
              failed.load());
  print_live_stats(server);
  return failed.load() == 0 ? 0 : 1;
}

/// One forked client process: connect, REQ, then `rounds` full
/// SND/STR/STP/RCV cycles, RLS. With `use_graph` the same round loop is
/// recorded once into a capture scope (the data verbs become client-side
/// no-ops, each STR a chained kernel node) and fired as a single
/// kLaunchGraph verb. Exits 0 on success.
int run_live_client(const std::string& prefix, int id,
                    const LiveKernelPlan& plan, int rounds,
                    ipc::TransportKind transport,
                    const std::string& fault_spec, bool use_graph) {
  rt::RtClientOptions options;
  options.transport = transport;
  // Each forked client rebuilds the injector from the shared spec; the
  // decision function is pure, so every process draws the same schedule.
  std::optional<fault::Injector> injector;
  if (!fault_spec.empty()) {
    auto fault_plan = fault::FaultPlan::parse(fault_spec);
    if (!fault_plan.ok()) return 1;
    injector.emplace(std::move(*fault_plan));
    options.fault = &*injector;
    // Retries must outpace the server's chaos lease (750 ms): a client
    // whose sends are being swallowed has to look like a retrier, not a
    // corpse, or the server expires it mid-backoff.
    options.op_timeout = std::chrono::milliseconds(150);
    options.max_retries = 8;
  }
  auto client = rt::RtClient::connect(prefix, id, plan.bytes_in,
                                      plan.bytes_out, options);
  if (!client.ok()) return 1;
  auto kid = rt::builtin_registry().id_of(plan.kernel);
  if (!kid.ok()) return 1;
  // Deterministic input pattern; mg_vcycle reads doubles, the rest floats.
  if (plan.bytes_in > 0) {
    if (std::string(plan.kernel) == "mg_vcycle") {
      auto* in = reinterpret_cast<double*>(client->input().data());
      for (Bytes i = 0; i < plan.bytes_in / 8; ++i) {
        in[i] = 0.001 * static_cast<double>(i % 1000);
      }
    } else {
      auto* in = reinterpret_cast<float*>(client->input().data());
      for (Bytes i = 0; i < plan.bytes_in / 4; ++i) {
        in[i] = 0.25f * static_cast<float>(i % 64 + 1);
      }
    }
  }
  if (!client->req(*kid, plan.params).ok()) return 1;
  if (use_graph && !client->begin_capture().ok()) return 1;
  for (int round = 0; round < rounds; ++round) {
    if (!client->snd().ok()) return 1;
    if (!client->str().ok()) return 1;
    if (!client->wait_done().ok()) return 1;
    if (!client->rcv().ok()) return 1;
  }
  if (use_graph) {
    if (!client->end_capture().ok()) return 1;
    if (!client->upload_graph(1).ok()) return 1;
    if (!client->launch_graph(1).ok()) return 1;
  }
  return client->rls().ok() ? 0 : 1;
}

/// Prints the live counter blocks from the obs registry — the single
/// source the server's stop() exported every legacy counter into. The
/// field names match the pre-registry output byte-for-byte.
void print_live_stats(const rt::RtServer& server) {
  const obs::Registry& reg = server.obs().metrics();
  const auto cnt = [&reg](const char* name) {
    const obs::Counter* c = reg.find_counter(name);
    return c != nullptr ? c->value() : 0L;
  };
  std::printf("  requests %ld (ring %ld), flushes %ld, jobs %ld, "
              "waits %ld\n",
              cnt("rt.requests"), cnt("rt.ring_requests"), cnt("rt.flushes"),
              cnt("rt.jobs_run"), cnt("rt.waits_sent"));
  std::printf("  ctrl messages: req %ld, snd %ld, str %ld, stp %ld, "
              "rcv %ld, rls %ld, graph %ld\n",
              cnt("rt.ctrl_messages_req"), cnt("rt.ctrl_messages_snd"),
              cnt("rt.ctrl_messages_str"), cnt("rt.ctrl_messages_stp"),
              cnt("rt.ctrl_messages_rcv"), cnt("rt.ctrl_messages_rls"),
              cnt("rt.ctrl_messages_graph"));
  if (cnt("rt.graphs_cached") > 0 || cnt("rt.graph_replays") > 0) {
    std::printf("  graphs: %ld cached (%ld upload chunks), %ld replays, "
                "%ld nodes run (%ld fused), %ld messages saved, "
                "%ld reclaimed\n",
                cnt("rt.graphs_cached"), cnt("rt.graph_uploads"),
                cnt("rt.graph_replays"), cnt("rt.graph_nodes_run"),
                cnt("rt.graph_nodes_fused"), cnt("rt.graph_messages_saved"),
                cnt("rt.graphs_reclaimed"));
  }
  std::printf("  bytes_copied %ld, syscalls_saved %ld, spin_wakeups %ld, "
              "doorbell_blocks %ld\n",
              cnt("rt.bytes_copied"), cnt("rt.syscalls_saved"),
              cnt("rt.spin_wakeups"), cnt("rt.doorbell_blocks"));
  const auto depth_line = [&reg](const char* label, const char* name) {
    std::printf("  %s:", label);
    if (const obs::Histogram* depth = reg.find_histogram(name);
        depth != nullptr) {
      for (std::size_t b = 0; b < depth->buckets(); ++b) {
        const long count = depth->bucket_count(b);
        if (count == 0) continue;
        const long lo = 1L << b;
        std::printf(" [%ld..%ld]=%ld", lo, 2 * lo - 1, count);
      }
    }
    std::printf("\n");
  };
  depth_line("batch depth", "rt.batch_depth");
  // Serve-loop block: the event-driven path's evidence. Ready-set depth
  // is lanes drained per wakeup (O(ready), not O(attached)); grants per
  // pump shows the response batching; the session counters show slot
  // recycling under churn (docs/scaling.md).
  depth_line("ready depth", "rt.ready_depth");
  depth_line("grants/pump", "rt.grants_per_pump");
  std::printf("  sessions: attached %ld, slots recycled %ld, stale "
              "rejected %ld, mailbox acks %ld, arena grants %ld\n",
              cnt("rt.sessions_attached"), cnt("rt.slots_recycled"),
              cnt("rt.stale_sessions"), cnt("rt.mailbox_acks"),
              cnt("rt.arena_grants"));
  if (server.config().exec == rt::ExecMode::kSharded) {
    const rt::RtExecCounters& e = server.exec_counters();
    std::printf("  exec: %ld launches, %ld shards, %ld steals, "
                "%ld overflow, %ld external jobs, overlap %ld B\n",
                cnt("exec.launches"), cnt("exec.shards_executed"),
                cnt("exec.steals"), cnt("exec.overflow_pushes"),
                cnt("exec.external_jobs"), cnt("rt.overlap_bytes"));
    std::printf("  worker shards:");
    for (std::size_t i = 0; i < e.worker_shards.size(); ++i) {
      if (i + 1 == e.worker_shards.size()) {
        std::printf(" ext=%ld", cnt("exec.worker_shards.external"));
      } else {
        std::printf(" w%zu=%ld",
                    i, cnt(("exec.worker_shards." + std::to_string(i)).c_str()));
      }
    }
    std::printf("\n");
  }
  if (server.config().vmem.enabled) {
    const long issued = cnt("vmem.prefetch_issued");
    const long hits = cnt("vmem.prefetch_hits");
    std::printf("  vmem: %ld faults, %ld page-ins, %ld page-outs "
                "(%ld clean drops), %ld host restores\n",
                cnt("vmem.faults"), cnt("vmem.page_ins"),
                cnt("vmem.page_outs"), cnt("vmem.clean_drops"),
                cnt("vmem.host_restores"));
    std::printf("  vmem: prefetch %ld issued / %ld hit (%.0f%%), "
                "pin shortfalls %ld, whole-client evictions %ld\n",
                issued, hits,
                issued > 0 ? 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(issued)
                           : 0.0,
                cnt("vmem.pin_shortfalls"),
                cnt("vmem.evictions_whole_client"));
    // Per-device counter block (multi-domain paging): where placement
    // routed the sessions and how each domain's pager fared.
    if (server.memory_domains() > 1) {
      const auto scnt = [&reg](const std::string& name) {
        const obs::Counter* c = reg.find_counter(name);
        return c != nullptr ? c->value() : 0L;
      };
      const auto sgauge = [&reg](const std::string& name) {
        const obs::Gauge* g = reg.find_gauge(name);
        return g != nullptr ? static_cast<long>(g->value()) : 0L;
      };
      for (std::size_t d = 0; d < server.memory_domains(); ++d) {
        const std::string dev = "device" + std::to_string(d);
        std::printf("  %s [%s]: placements %ld, clients %ld, faults %ld, "
                    "page-ins %ld, page-outs %ld, resident %ld B\n",
                    dev.c_str(),
                    sched::placement_name(server.config().placement.policy),
                    scnt("rt." + dev + ".placements"),
                    sgauge("rt." + dev + ".clients"),
                    scnt("vmem." + dev + ".faults"),
                    scnt("vmem." + dev + ".page_ins"),
                    scnt("vmem." + dev + ".page_outs"),
                    sgauge("vmem." + dev + ".resident_bytes"));
      }
    }
  }
}

/// Real-machine run: forked clients against an in-process GVM server.
int run_live(const Flags& flags, const std::string& workload_name, int procs,
             int rounds, const gvm::GvmConfig& gvm_config) {
  ipc::TransportKind transport = ipc::TransportKind::kMessageQueue;
  if (flags.has("transport") &&
      !ipc::parse_transport(flags.get_string("transport"), &transport)) {
    std::fprintf(stderr, "unknown transport '%s' (try: mq shm)\n",
                 flags.get_string("transport").c_str());
    return 2;
  }
  rt::DataPlane data_plane = rt::DataPlane::kStaged;
  if (flags.has("data-plane") &&
      !rt::parse_data_plane(flags.get_string("data-plane"), &data_plane)) {
    std::fprintf(stderr,
                 "unknown data plane '%s' (try: staged zero_copy)\n",
                 flags.get_string("data-plane").c_str());
    return 2;
  }
  rt::ExecMode exec = rt::ExecMode::kSerial;
  if (flags.has("exec") &&
      !rt::parse_exec_mode(flags.get_string("exec"), &exec)) {
    std::fprintf(stderr, "unknown exec mode '%s' (try: serial sharded)\n",
                 flags.get_string("exec").c_str());
    return 2;
  }
  const LiveKernelPlan plan = live_plan(workload_name);
  const std::string fault_spec = flags.get_string("fault-plan", "");
  std::optional<fault::Injector> server_faults;
  if (!fault_spec.empty()) {
    auto fault_plan = fault::FaultPlan::parse(fault_spec);
    if (!fault_plan.ok()) {
      std::fprintf(stderr, "bad --fault-plan: %s\n",
                   fault_plan.status().to_string().c_str());
      return 2;
    }
    server_faults.emplace(std::move(*fault_plan));
  }

  rt::RtServerConfig config;
  config.prefix = "/vgpu_live_" + std::to_string(::getpid());
  config.expected_clients = procs;
  config.workers = procs < 4 ? procs : 4;
  if (flags.has("workers")) {
    config.workers = static_cast<int>(flags.get_long("workers", config.workers));
  }
  config.sched = gvm_config.sched;
  config.per_client_quota = gvm_config.per_client_quota;
  config.transport = transport;
  config.data_plane = data_plane;
  config.exec = exec;
  // Any vmem knob implies --vmem; the geometry defaults force real paging
  // for the stock workloads (8 vecadd clients ask ~96 MiB of a 64 MiB
  // device) while the ledger keeps the virtual budget comfortable.
  if (flags.get_bool("vmem") || flags.has("page-size") ||
      flags.has("host-ledger-mb") || flags.has("device-mb")) {
    config.vmem.enabled = true;
    config.vmem.page_size =
        static_cast<Bytes>(flags.get_long("page-size", 64 * 1024));
    config.vmem.device_capacity =
        static_cast<Bytes>(flags.get_long("device-mb", 64)) * kMiB;
    config.vmem.host_ledger =
        static_cast<Bytes>(flags.get_long("host-ledger-mb", 256)) * kMiB;
    // Multi-device paging: N memory domains placed at REQ time.
    config.vmem.devices =
        static_cast<int>(flags.get_long("devices", 1));
    if (flags.has("placement") &&
        !sched::parse_placement(flags.get_string("placement"),
                                &config.placement.policy)) {
      std::fprintf(stderr,
                   "unknown placement '%s' (try: static pack spread "
                   "locality)\n",
                   flags.get_string("placement").c_str());
      return 2;
    }
  } else if (flags.get_long("devices", 1) > 1) {
    std::fprintf(stderr,
                 "live --devices=N shards the vmem pager: add --vmem (or "
                 "a vmem knob)\n");
    return 2;
  }
  const std::string metrics_path = flags.get_string("metrics-json", "");
  const std::string trace_path = flags.get_string("trace-out", "");
  // Span tracing is opt-in: a trace file request (or --trace) turns it on.
  config.obs.tracing = !trace_path.empty() || flags.get_bool("trace");
  if (server_faults.has_value()) {
    config.fault = &*server_faults;
    // Chaos runs lean on lease expiry to release the survivors' barrier
    // when a kill rule fires; keep the detection latency demo-friendly.
    config.lease_timeout = std::chrono::milliseconds(750);
    config.lease_check_interval = std::chrono::milliseconds(20);
  }
  if (const int clients = static_cast<int>(flags.get_long("clients", 0));
      clients > 0) {
    // Population mode: threaded open-loop clients instead of forked SPMD
    // processes; --rounds defaults to 1 full verb cycle per client.
    const int pop_rounds =
        static_cast<int>(flags.get_long("rounds", 1));
    return run_live_population(flags, std::move(config), workload_name,
                               clients, pop_rounds, transport);
  }
  rt::RtServer server(config, rt::builtin_registry());
  const Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "live server start failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> children;
  for (int c = 0; c < procs; ++c) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::_exit(run_live_client(config.prefix, c, plan, rounds, transport,
                              fault_spec, flags.get_bool("graph")));
    }
    children.push_back(pid);
  }
  bool ok = true;
  int clients_killed = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
      ok = false;
      continue;
    }
    if (!fault_spec.empty() && WIFSIGNALED(status) &&
        WTERMSIG(status) == SIGKILL) {
      ++clients_killed;  // a kill rule fired: an expected chaos casualty
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ok = false;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (clients_killed > 0) {
    // Let the lease sweep detect and reclaim the chaos casualties before
    // stop(), so the recovery counters below reflect the cleanup.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().clients_reclaimed.load() < clients_killed &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  server.stop();

  std::printf("  %-10s %10.1f ms  [%s/%s, kernel %s]\n", "live", wall_ms,
              ipc::transport_name(transport), rt::data_plane_name(data_plane),
              plan.kernel);
  print_live_stats(server);
  if (server_faults.has_value()) {
    // Server-side injector counters (the forked clients' injectors die
    // with their processes; their visible effect is clients_killed and the
    // rt.* recovery counters above).
    std::printf("  fault plan: %s\n",
                server_faults->plan().to_string().c_str());
    std::printf("  fault: %d client(s) killed;", clients_killed);
    for (const fault::Point point : fault::all_points()) {
      const long n = server_faults->occurrences(point);
      if (n > 0) std::printf(" %s=%ld", fault::point_name(point), n);
    }
    std::printf("\n");
    const obs::Counter* leases =
        server.obs().metrics().find_counter("rt.leases_expired");
    const obs::Counter* reclaimed =
        server.obs().metrics().find_counter("rt.clients_reclaimed");
    std::printf("  recovery: leases_expired %ld, clients_reclaimed %ld\n",
                leases != nullptr ? leases->value() : 0L,
                reclaimed != nullptr ? reclaimed->value() : 0L);
  }
  const auto kernel_name = [](int id) {
    const std::string* name = rt::builtin_registry().name_of(id);
    return name != nullptr ? *name : "kernel " + std::to_string(id);
  };
  if (config.obs.tracing) {
    // Phase spans carry the kernel id in aux; name the trace events and
    // residual rows after the kernel they measured.
    const obs::Tracer::NameFn name_fn =
        [&kernel_name](const obs::SpanRecord& span) -> std::string {
      switch (span.phase) {
        case obs::Phase::kCopyIn:
        case obs::Phase::kKernel:
        case obs::Phase::kCopyOut:
        case obs::Phase::kQueueWait:
          return std::string(obs::phase_name(span.phase)) + " " +
                 kernel_name(span.aux);
        default:
          return "";
      }
    };
    if (!trace_path.empty()) {
      const Status ts = server.obs().tracer().write_chrome_trace(trace_path,
                                                                 name_fn);
      if (!ts.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     ts.to_string().c_str());
        return 1;
      }
      std::printf("  trace: %s (%zu spans, %ld dropped)\n",
                  trace_path.c_str(),
                  server.obs().tracer().collect().size(),
                  server.obs().tracer().dropped());
    }
    const std::vector<obs::KernelResidual> residuals =
        obs::compute_residuals(server.obs().tracer().collect(), kernel_name);
    std::fputs(obs::format_residuals(residuals).c_str(), stdout);
  }
  if (!metrics_path.empty()) {
    const Status ms = server.obs().metrics().write_json(metrics_path);
    if (!ms.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   ms.to_string().c_str());
      return 1;
    }
    std::printf("  metrics: %s\n", metrics_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "live run failed: a client exited non-zero\n");
    return 1;
  }
  return 0;
}

void print_sched_counters(const gvm::RunResult& r, sched::Policy policy) {
  const sched::SchedStats& s = r.sched;
  const sched::AdmissionStats& a = r.admission;
  std::printf("scheduler [%s]: %ld grants in %ld batches, mean wait "
              "%.2f ms, p95 wait %.2f ms\n",
              sched::policy_name(policy), s.grants, s.batches,
              s.mean_wait() * 1e3, s.wait_percentile(0.95) * 1e3);
  std::printf("  quanta %ld, rotations %ld, aging promotions %ld\n",
              s.quanta_granted, s.rotations, s.aging_promotions);
  std::printf("admission: %ld admitted, %ld rejected (over quota), "
              "%ld backpressured, %ld evictions\n",
              a.admitted, a.rejected, a.backpressured, a.evictions);
}

/// `--trace-gen=<mix>`: synthesize a canonical multi-tenant trace and
/// write it to `--trace-file=` (stdout if omitted). `--trace-out=` is
/// already the span-trace flag, hence the distinct spelling.
int run_trace_gen(const Flags& flags) {
  const std::string mix = flags.get_string("trace-gen");
  auto trace = workloads::trace::canonical_mix(
      mix, flags.get_long("horizon-us", 0),
      static_cast<std::uint64_t>(flags.get_long("seed", 42)));
  if (!trace.ok()) {
    std::fprintf(stderr, "trace-gen: %s (try:", trace.status().to_string().c_str());
    for (const auto& name : workloads::trace::canonical_mix_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  const std::string text = trace->serialize();
  const std::string path = flags.get_string("trace-file", "");
  if (path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace-gen: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s: mix %s, %zu tenants, %zu ops\n", path.c_str(),
              trace->mix.c_str(), trace->tenants.size(), trace->ops.size());
  return 0;
}

/// `--trace-in=<file>`: replay a trace on the DES path (`--mode=virt`,
/// default) or the live RtServer path (`--mode=live`), printing the
/// per-tenant SLO table.
int run_trace_in(const Flags& flags) {
  std::string text;
  {
    const std::string path = flags.get_string("trace-in");
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "trace-in: cannot read %s\n", path.c_str());
      return 1;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  auto trace = workloads::trace::parse(text);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace-in: %s\n", trace.status().to_string().c_str());
    return 2;
  }

  sched::SchedulerConfig sched_config;
  const std::string sched_name = flags.get_string("sched", "fair");
  if (!sched::parse_policy(sched_name, &sched_config.policy)) {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched_name.c_str());
    return 2;
  }

  StatusOr<workloads::trace::ReplayResult> result =
      InvalidArgument("unreached");
  const std::string mode = flags.get_string("mode", "virt");
  if (mode == "virt") {
    const gpu::DeviceSpec spec =
        select_device(flags.get_string("device", "c2070"));
    gvm::GvmConfig config;
    config.sched = sched_config;
    result = workloads::trace::replay_des(*trace, spec, config);
  } else if (mode == "live") {
    workloads::trace::LiveReplayOptions opts;
    opts.sched = sched_config;
    opts.transport = flags.get_string("transport", "shm");
    opts.data_plane = flags.get_string("data-plane", "zero_copy");
    opts.exec = flags.get_string("exec", "serial");
    opts.workers = static_cast<int>(flags.get_long("workers", 2));
    opts.vmem = flags.get_bool("vmem");
    opts.vmem_device_mb = flags.get_long("device-mb", 64);
    result = workloads::trace::replay_live(*trace, opts);
  } else {
    std::fprintf(stderr, "trace-in supports --mode=virt or --mode=live\n");
    return 2;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "trace replay failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("mix %s on %s (%s): %zu ops replayed\n", trace->mix.c_str(),
              mode.c_str(), sched_name.c_str(), trace->ops.size());
  std::printf("%s", result->report.format_table().c_str());
  if (mode == "live") {
    std::printf("errors %ld | leaked slots %ld | leaked segments %ld\n",
                result->errors, result->leaked_slots,
                result->leaked_segments);
  }
  return result->errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("trace-gen")) return run_trace_gen(flags);
  if (flags.has("trace-in")) return run_trace_in(flags);
  if (!flags.has("workload")) {
    std::printf(
        "usage: %s --workload=<vecadd|ep|mm|mg|blackscholes|cg|"
        "electrostatics>\n"
        "          [--procs=8] [--rounds=<default>] [--device=c2070]\n"
        "          [--mode=native|virt|remote|remote10g|vm|merge|live]\n"
        "          [--sched=barrier|tq|fair|prio] [--quota-mb=<N>]\n"
        "          [--devices=<N>] [--placement=static|pack|spread|"
        "locality]\n"
        "          [--sessions=<N>] [--rebalance]\n"
        "          [--transport=mq|shm] [--data-plane=staged|zero_copy]\n"
        "          [--exec=serial|sharded] [--workers=<N>] [--graph]\n"
        "          [--clients=<N>] [--arrival=burst|poisson] [--rate=<N/s>]\n"
        "          [--vmem] [--page-size=<bytes>] [--device-mb=<N>]\n"
        "          [--host-ledger-mb=<N>]\n"
        "          [--metrics-json=<file>] [--trace-out=<file>]\n"
        "          [--fault-plan=<spec>] [--all-modes] [--model]\n"
        "       %s --trace-gen=<mix> [--trace-file=<out>] [--seed=S]\n"
        "          [--horizon-us=N]\n"
        "       %s --trace-in=<file> [--mode=virt|live] [--sched=...]\n"
        "          [--transport=...] [--exec=...] [--vmem]\n",
        flags.program().c_str(), flags.program().c_str(),
        flags.program().c_str());
    return flags.positional().empty() && argc <= 1 ? 0 : 2;
  }

  const workloads::Workload w =
      select_workload(flags.get_string("workload"));
  const gpu::DeviceSpec spec =
      select_device(flags.get_string("device", "c2070"));
  const int procs = static_cast<int>(flags.get_long("procs", 8));
  const int rounds = static_cast<int>(flags.get_long("rounds", w.rounds));

  gvm::GvmConfig gvm_config;
  const std::string sched_name = flags.get_string("sched", "barrier");
  if (!sched::parse_policy(sched_name, &gvm_config.sched.policy)) {
    std::fprintf(stderr,
                 "unknown scheduler '%s' (try: barrier tq fair prio)\n",
                 sched_name.c_str());
    return 2;
  }
  gvm_config.per_client_quota =
      static_cast<Bytes>(flags.get_long("quota-mb", 0)) * kMiB;
  // The counter block is noise for the default paper configuration; print
  // it whenever the user picked a policy, a quota, or asked for virt.
  const bool show_sched_counters =
      flags.has("sched") || flags.has("quota-mb");

  std::printf("workload %s, %d processes, %d round(s), device %s\n",
              w.name.c_str(), procs, rounds, spec.name.c_str());

  if (flags.get_string("mode", "virt") == "live" &&
      !flags.get_bool("all-modes")) {
    return run_live(flags, flags.get_string("workload"), procs, rounds,
                    gvm_config);
  }
  if (const int devices = static_cast<int>(flags.get_long("devices", 1));
      devices > 1 && !flags.get_bool("all-modes")) {
    if (flags.get_string("mode", "virt") != "virt") {
      std::fprintf(stderr, "--devices=N needs --mode=virt or --mode=live\n");
      return 2;
    }
    return run_pool_mode(flags, w, spec, devices, procs, rounds, gvm_config);
  }

  gvm::RunResult virt_result;
  bool ran_virt = false;
  if (flags.get_bool("all-modes")) {
    const SimDuration native =
        run_mode("native", spec, gvm_config, w, rounds, procs);
    std::printf("  %-10s %10.1f ms\n", "native", to_ms(native));
    for (const char* mode : {"virt", "merge", "vm", "remote10g", "remote"}) {
      const SimDuration t =
          run_mode(mode, spec, gvm_config, w, rounds, procs, &virt_result);
      if (std::string(mode) == "virt") ran_virt = true;
      std::printf("  %-10s %10.1f ms  (%.2fx vs native)\n", mode, to_ms(t),
                  static_cast<double>(native) / static_cast<double>(t));
    }
  } else {
    const std::string mode = flags.get_string("mode", "virt");
    const SimDuration t =
        run_mode(mode, spec, gvm_config, w, rounds, procs, &virt_result);
    ran_virt = mode == "virt";
    std::printf("  %-10s %10.1f ms\n", mode.c_str(), to_ms(t));
  }
  if (ran_virt && show_sched_counters) {
    print_sched_counters(virt_result, gvm_config.sched.policy);
  }

  if (flags.get_bool("model")) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, w.plan, procs, w.name);
    std::printf("model: Tin %.2f ms, Tcomp %.2f ms, Tout %.2f ms, Tctx "
                "%.1f ms, Tinit %.1f ms -> S(%d) = %.2f, Smax = %.2f [%s]\n",
                to_ms(p.t_data_in), to_ms(p.t_comp), to_ms(p.t_data_out),
                to_ms(p.t_ctx_switch), to_ms(p.t_init), procs,
                model::speedup(p, procs), model::max_speedup(p),
                model::workload_class_name(model::classify(p)));
  }
  return 0;
}
