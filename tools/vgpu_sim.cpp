// vgpu-sim: single-command driver for sharing experiments.
//
//   vgpu-sim --workload=<name> [--procs=8] [--mode=<m>] [--device=<d>]
//            [--rounds=N] [--sched=<p>] [--quota-mb=N] [--all-modes]
//            [--model]
//
//   workloads:  vecadd ep mm mg blackscholes cg electrostatics
//   modes:      native | virt | remote | remote10g | vm | merge
//   devices:    c2070 (default) | c2050 | gtx480 | c1060
//   schedulers: barrier (default) | tq | fair | prio
//
// `--sched` and `--quota-mb` only affect virtualized runs; any value other
// than the default barrier policy also prints the scheduler counter block.
//
// Examples:
//   vgpu-sim --workload=ep --procs=8 --all-modes
//   vgpu-sim --workload=vecadd --mode=virt --procs=4 --model
//   vgpu-sim --workload=mm --mode=virt --sched=tq --quota-mb=512
#include <cstdio>
#include <string>
#include <utility>

#include "baselines/baselines.hpp"
#include "common/flags.hpp"
#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

namespace {

workloads::Workload select_workload(const std::string& name) {
  if (name == "vecadd") return workloads::vector_add();
  if (name == "ep") return workloads::npb_ep();
  if (name == "mm") return workloads::matmul();
  if (name == "mg") return workloads::npb_mg();
  if (name == "blackscholes") return workloads::black_scholes();
  if (name == "cg") return workloads::npb_cg();
  if (name == "electrostatics") return workloads::electrostatics();
  std::fprintf(stderr,
               "unknown workload '%s' (try: vecadd ep mm mg blackscholes "
               "cg electrostatics)\n",
               name.c_str());
  std::exit(2);
}

gpu::DeviceSpec select_device(const std::string& name) {
  if (name == "c2070") return gpu::tesla_c2070();
  if (name == "c2050") return gpu::tesla_c2050();
  if (name == "gtx480") return gpu::gtx480();
  if (name == "c1060") return gpu::tesla_c1060();
  std::fprintf(stderr,
               "unknown device '%s' (try: c2070 c2050 gtx480 c1060)\n",
               name.c_str());
  std::exit(2);
}

/// Runs one sharing mode. For "virt" the full result (scheduler and
/// admission counters included) is copied into `*virt_result` when the
/// caller asks for it.
SimDuration run_mode(const std::string& mode, const gpu::DeviceSpec& spec,
                     const gvm::GvmConfig& gvm_config,
                     const workloads::Workload& w, int rounds, int procs,
                     gvm::RunResult* virt_result = nullptr) {
  if (mode == "native") {
    return gvm::run_baseline(spec, w.plan, rounds, procs).turnaround;
  }
  if (mode == "virt") {
    gvm::RunResult r =
        gvm::run_virtualized(spec, gvm_config, w.plan, rounds, procs);
    const SimDuration turnaround = r.turnaround;
    if (virt_result != nullptr) *virt_result = std::move(r);
    return turnaround;
  }
  if (mode == "remote" || mode == "remote10g") {
    baselines::RemoteGpuConfig config;
    if (mode == "remote10g") config.network_bw = 1.25e9;
    return baselines::run_remote_gpu(spec, config, w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "vm") {
    return baselines::run_vm_passthrough(spec, baselines::VmConfig{},
                                         w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "merge") {
    return baselines::run_kernel_merge(spec, w.plan, rounds, procs)
        .turnaround;
  }
  std::fprintf(stderr,
               "unknown mode '%s' (try: native virt remote remote10g vm "
               "merge)\n",
               mode.c_str());
  std::exit(2);
}

void print_sched_counters(const gvm::RunResult& r, sched::Policy policy) {
  const sched::SchedStats& s = r.sched;
  const sched::AdmissionStats& a = r.admission;
  std::printf("scheduler [%s]: %ld grants in %ld batches, mean wait "
              "%.2f ms, p95 wait %.2f ms\n",
              sched::policy_name(policy), s.grants, s.batches,
              s.mean_wait() * 1e3, s.wait_percentile(0.95) * 1e3);
  std::printf("  quanta %ld, rotations %ld, aging promotions %ld\n",
              s.quanta_granted, s.rotations, s.aging_promotions);
  std::printf("admission: %ld admitted, %ld rejected (over quota), "
              "%ld backpressured, %ld evictions\n",
              a.admitted, a.rejected, a.backpressured, a.evictions);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.has("workload")) {
    std::printf(
        "usage: %s --workload=<vecadd|ep|mm|mg|blackscholes|cg|"
        "electrostatics>\n"
        "          [--procs=8] [--rounds=<default>] [--device=c2070]\n"
        "          [--mode=native|virt|remote|remote10g|vm|merge]\n"
        "          [--sched=barrier|tq|fair|prio] [--quota-mb=<N>]\n"
        "          [--all-modes] [--model]\n",
        flags.program().c_str());
    return flags.positional().empty() && argc <= 1 ? 0 : 2;
  }

  const workloads::Workload w =
      select_workload(flags.get_string("workload"));
  const gpu::DeviceSpec spec =
      select_device(flags.get_string("device", "c2070"));
  const int procs = static_cast<int>(flags.get_long("procs", 8));
  const int rounds = static_cast<int>(flags.get_long("rounds", w.rounds));

  gvm::GvmConfig gvm_config;
  const std::string sched_name = flags.get_string("sched", "barrier");
  if (!sched::parse_policy(sched_name, &gvm_config.sched.policy)) {
    std::fprintf(stderr,
                 "unknown scheduler '%s' (try: barrier tq fair prio)\n",
                 sched_name.c_str());
    return 2;
  }
  gvm_config.per_client_quota =
      static_cast<Bytes>(flags.get_long("quota-mb", 0)) * kMiB;
  // The counter block is noise for the default paper configuration; print
  // it whenever the user picked a policy, a quota, or asked for virt.
  const bool show_sched_counters =
      flags.has("sched") || flags.has("quota-mb");

  std::printf("workload %s, %d processes, %d round(s), device %s\n",
              w.name.c_str(), procs, rounds, spec.name.c_str());

  gvm::RunResult virt_result;
  bool ran_virt = false;
  if (flags.get_bool("all-modes")) {
    const SimDuration native =
        run_mode("native", spec, gvm_config, w, rounds, procs);
    std::printf("  %-10s %10.1f ms\n", "native", to_ms(native));
    for (const char* mode : {"virt", "merge", "vm", "remote10g", "remote"}) {
      const SimDuration t =
          run_mode(mode, spec, gvm_config, w, rounds, procs, &virt_result);
      if (std::string(mode) == "virt") ran_virt = true;
      std::printf("  %-10s %10.1f ms  (%.2fx vs native)\n", mode, to_ms(t),
                  static_cast<double>(native) / static_cast<double>(t));
    }
  } else {
    const std::string mode = flags.get_string("mode", "virt");
    const SimDuration t =
        run_mode(mode, spec, gvm_config, w, rounds, procs, &virt_result);
    ran_virt = mode == "virt";
    std::printf("  %-10s %10.1f ms\n", mode.c_str(), to_ms(t));
  }
  if (ran_virt && show_sched_counters) {
    print_sched_counters(virt_result, gvm_config.sched.policy);
  }

  if (flags.get_bool("model")) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, w.plan, procs, w.name);
    std::printf("model: Tin %.2f ms, Tcomp %.2f ms, Tout %.2f ms, Tctx "
                "%.1f ms, Tinit %.1f ms -> S(%d) = %.2f, Smax = %.2f [%s]\n",
                to_ms(p.t_data_in), to_ms(p.t_comp), to_ms(p.t_data_out),
                to_ms(p.t_ctx_switch), to_ms(p.t_init), procs,
                model::speedup(p, procs), model::max_speedup(p),
                model::workload_class_name(model::classify(p)));
  }
  return 0;
}
