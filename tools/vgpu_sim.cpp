// vgpu-sim: single-command driver for sharing experiments.
//
//   vgpu-sim --workload=<name> [--procs=8] [--mode=<m>] [--device=<d>]
//            [--rounds=N] [--all-modes] [--model]
//
//   workloads: vecadd ep mm mg blackscholes cg electrostatics
//   modes:     native | virt | remote | remote10g | vm | merge
//   devices:   c2070 (default) | c2050 | gtx480 | c1060
//
// Examples:
//   vgpu-sim --workload=ep --procs=8 --all-modes
//   vgpu-sim --workload=vecadd --mode=virt --procs=4 --model
#include <cstdio>
#include <string>

#include "baselines/baselines.hpp"
#include "common/flags.hpp"
#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

namespace {

workloads::Workload select_workload(const std::string& name) {
  if (name == "vecadd") return workloads::vector_add();
  if (name == "ep") return workloads::npb_ep();
  if (name == "mm") return workloads::matmul();
  if (name == "mg") return workloads::npb_mg();
  if (name == "blackscholes") return workloads::black_scholes();
  if (name == "cg") return workloads::npb_cg();
  if (name == "electrostatics") return workloads::electrostatics();
  std::fprintf(stderr,
               "unknown workload '%s' (try: vecadd ep mm mg blackscholes "
               "cg electrostatics)\n",
               name.c_str());
  std::exit(2);
}

gpu::DeviceSpec select_device(const std::string& name) {
  if (name == "c2070") return gpu::tesla_c2070();
  if (name == "c2050") return gpu::tesla_c2050();
  if (name == "gtx480") return gpu::gtx480();
  if (name == "c1060") return gpu::tesla_c1060();
  std::fprintf(stderr,
               "unknown device '%s' (try: c2070 c2050 gtx480 c1060)\n",
               name.c_str());
  std::exit(2);
}

SimDuration run_mode(const std::string& mode, const gpu::DeviceSpec& spec,
                     const workloads::Workload& w, int rounds, int procs) {
  if (mode == "native") {
    return gvm::run_baseline(spec, w.plan, rounds, procs).turnaround;
  }
  if (mode == "virt") {
    return gvm::run_virtualized(spec, gvm::GvmConfig{}, w.plan, rounds,
                                procs)
        .turnaround;
  }
  if (mode == "remote" || mode == "remote10g") {
    baselines::RemoteGpuConfig config;
    if (mode == "remote10g") config.network_bw = 1.25e9;
    return baselines::run_remote_gpu(spec, config, w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "vm") {
    return baselines::run_vm_passthrough(spec, baselines::VmConfig{},
                                         w.plan, rounds, procs)
        .turnaround;
  }
  if (mode == "merge") {
    return baselines::run_kernel_merge(spec, w.plan, rounds, procs)
        .turnaround;
  }
  std::fprintf(stderr,
               "unknown mode '%s' (try: native virt remote remote10g vm "
               "merge)\n",
               mode.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.has("workload")) {
    std::printf(
        "usage: %s --workload=<vecadd|ep|mm|mg|blackscholes|cg|"
        "electrostatics>\n"
        "          [--procs=8] [--rounds=<default>] [--device=c2070]\n"
        "          [--mode=native|virt|remote|remote10g|vm|merge]\n"
        "          [--all-modes] [--model]\n",
        flags.program().c_str());
    return flags.positional().empty() && argc <= 1 ? 0 : 2;
  }

  const workloads::Workload w =
      select_workload(flags.get_string("workload"));
  const gpu::DeviceSpec spec =
      select_device(flags.get_string("device", "c2070"));
  const int procs = static_cast<int>(flags.get_long("procs", 8));
  const int rounds = static_cast<int>(flags.get_long("rounds", w.rounds));

  std::printf("workload %s, %d processes, %d round(s), device %s\n",
              w.name.c_str(), procs, rounds, spec.name.c_str());

  if (flags.get_bool("all-modes")) {
    const SimDuration native = run_mode("native", spec, w, rounds, procs);
    std::printf("  %-10s %10.1f ms\n", "native", to_ms(native));
    for (const char* mode : {"virt", "merge", "vm", "remote10g", "remote"}) {
      const SimDuration t = run_mode(mode, spec, w, rounds, procs);
      std::printf("  %-10s %10.1f ms  (%.2fx vs native)\n", mode, to_ms(t),
                  static_cast<double>(native) / static_cast<double>(t));
    }
  } else {
    const std::string mode = flags.get_string("mode", "virt");
    const SimDuration t = run_mode(mode, spec, w, rounds, procs);
    std::printf("  %-10s %10.1f ms\n", mode.c_str(), to_ms(t));
  }

  if (flags.get_bool("model")) {
    const model::ExecutionProfile p =
        gvm::measure_profile(spec, w.plan, procs, w.name);
    std::printf("model: Tin %.2f ms, Tcomp %.2f ms, Tout %.2f ms, Tctx "
                "%.1f ms, Tinit %.1f ms -> S(%d) = %.2f, Smax = %.2f [%s]\n",
                to_ms(p.t_data_in), to_ms(p.t_comp), to_ms(p.t_data_out),
                to_ms(p.t_ctx_switch), to_ms(p.t_init), procs,
                model::speedup(p, procs), model::max_speedup(p),
                model::workload_class_name(model::classify(p)));
  }
  return 0;
}
